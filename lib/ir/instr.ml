(* IR instructions.

   The instruction set follows the paper's model: virtual registers and
   singleton memory resources are both first-class SSA names.  Singleton
   loads/stores ([Load]/[Store]) move scalar values between the two name
   spaces.  Aliased references — calls, pointer loads/stores, array
   accesses — carry explicit sets of singleton resources they may define
   ([mdefs]) or use ([muses]); these are the paper's aggregate resources.

   Phi instructions exist for both name spaces: [Rphi] joins register
   names and [Mphi] joins memory resource names at confluence points.

   An instruction is a mutable cell [{ iid; op }] so transformations can
   rewrite an instruction in place (e.g. replace a load by a copy) while
   sets keyed on instruction identity ([iid]) stay valid. *)

type reg = Ids.reg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type unop = Neg | Lnot

type operand = Reg of reg | Imm of int

type call_kind =
  | User of string  (** user-defined function in the same program *)
  | Extern of string  (** unknown external function *)

type opcode =
  | Bin of { dst : reg; op : binop; l : operand; r : operand }
  | Un of { dst : reg; op : unop; src : operand }
  | Copy of { dst : reg; src : operand }
  | Load of { dst : reg; src : Resource.t }
      (** singleton load: dst = ld [src] *)
  | Store of { dst : Resource.t; src : operand }
      (** singleton store: st [dst] = src *)
  | Addr_of of { dst : reg; var : Ids.vid; off : operand }
      (** dst = &var + off (off in abstract element units) *)
  | Ptr_load of {
      dst : reg;
      addr : operand;
      muses : Resource.t list;  (** aliased load of these singletons *)
    }
  | Ptr_store of {
      addr : operand;
      src : operand;
      mdefs : Resource.t list;  (** aliased store *)
      muses : Resource.t list;
          (** weak update: the old versions that may survive *)
    }
  | Call of {
      dst : reg option;
      callee : call_kind;
      args : operand list;
      mdefs : Resource.t list;  (** aliased store side of the call *)
      muses : Resource.t list;  (** aliased load side of the call *)
    }
  | Dummy_aload of { muses : Resource.t list }
      (** dummy aliased load inserted by the promoter in interval
          preheaders to summarise an inner interval for its parent
          (paper section 4.4); removed by [cleanup]. *)
  | Exit_use of { muses : Resource.t list }
      (** virtual aliased load of every global placed at the end of each
          returning block: a function's caller may observe globals, so
          their memory image must be valid at the return.  Behaves as an
          aliased load for promotion; a no-op at execution time. *)
  | Rphi of { dst : reg; srcs : (Ids.bid * reg) list }
  | Mphi of { dst : Resource.t; srcs : (Ids.bid * Resource.t) list }
  | Print of { src : operand }  (** observable output; no memory effect *)

type t = { iid : Ids.iid; mutable op : opcode }

let is_phi i = match i.op with Rphi _ | Mphi _ -> true | _ -> false

let is_mphi i = match i.op with Mphi _ -> true | _ -> false

let is_rphi i = match i.op with Rphi _ -> true | _ -> false

let is_dummy i = match i.op with Dummy_aload _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Register defs and uses *)

let reg_def (op : opcode) : reg option =
  match op with
  | Bin { dst; _ }
  | Un { dst; _ }
  | Copy { dst; _ }
  | Load { dst; _ }
  | Addr_of { dst; _ }
  | Ptr_load { dst; _ }
  | Rphi { dst; _ } ->
      Some dst
  | Call { dst; _ } -> dst
  | Store _ | Ptr_store _ | Dummy_aload _ | Exit_use _ | Mphi _ | Print _ ->
      None

let regs_of_operand = function Reg r -> [ r ] | Imm _ -> []

(* Register uses, excluding phi sources (phi sources are uses at the end
   of the corresponding predecessor, and most analyses treat them
   specially). *)
let reg_uses (op : opcode) : reg list =
  match op with
  | Bin { l; r; _ } -> regs_of_operand l @ regs_of_operand r
  | Un { src; _ } | Copy { src; _ } | Print { src } -> regs_of_operand src
  | Load _ -> []
  | Store { src; _ } -> regs_of_operand src
  | Addr_of { off; _ } -> regs_of_operand off
  | Ptr_load { addr; _ } -> regs_of_operand addr
  | Ptr_store { addr; src; _ } -> regs_of_operand addr @ regs_of_operand src
  | Call { args; _ } -> List.concat_map regs_of_operand args
  | Dummy_aload _ | Exit_use _ -> []
  | Rphi _ | Mphi _ -> []

let rphi_srcs (op : opcode) : (Ids.bid * reg) list =
  match op with Rphi { srcs; _ } -> srcs | _ -> []

(* ------------------------------------------------------------------ *)
(* Memory resource defs and uses *)

(* The singleton resource defined by this instruction, if it is a
   singleton definition (store or memory phi). *)
let mem_def (op : opcode) : Resource.t option =
  match op with
  | Store { dst; _ } | Mphi { dst; _ } -> Some dst
  | Bin _ | Un _ | Copy _ | Load _ | Addr_of _ | Ptr_load _ | Ptr_store _
  | Call _ | Dummy_aload _ | Exit_use _ | Rphi _ | Print _ ->
      None

(* All resources defined, including the may-defs of aliased stores. *)
let mem_defs (op : opcode) : Resource.t list =
  match op with
  | Store { dst; _ } | Mphi { dst; _ } -> [ dst ]
  | Ptr_store { mdefs; _ } | Call { mdefs; _ } -> mdefs
  | Bin _ | Un _ | Copy _ | Load _ | Addr_of _ | Ptr_load _ | Dummy_aload _
  | Exit_use _ | Rphi _ | Print _ ->
      []

(* Resources used, excluding memory-phi sources. *)
let mem_uses (op : opcode) : Resource.t list =
  match op with
  | Load { src; _ } -> [ src ]
  | Ptr_load { muses; _ }
  | Ptr_store { muses; _ }
  | Call { muses; _ }
  | Dummy_aload { muses }
  | Exit_use { muses } ->
      muses
  | Bin _ | Un _ | Copy _ | Store _ | Addr_of _ | Rphi _ | Mphi _ | Print _
    ->
      []

let mphi_srcs (op : opcode) : (Ids.bid * Resource.t) list =
  match op with Mphi { srcs; _ } -> srcs | _ -> []

(* Is this instruction an aliased load / aliased store in the paper's
   sense?  (Calls are both.) *)
let is_aliased_load (op : opcode) =
  match op with
  | Ptr_load _ | Call _ | Dummy_aload _ | Exit_use _ -> true
  | Bin _ | Un _ | Copy _ | Load _ | Store _ | Addr_of _ | Ptr_store _
  | Rphi _ | Mphi _ | Print _ ->
      false

let is_aliased_store (op : opcode) =
  match op with
  | Ptr_store _ | Call _ -> true
  | Bin _ | Un _ | Copy _ | Load _ | Store _ | Addr_of _ | Ptr_load _
  | Dummy_aload _ | Exit_use _ | Rphi _ | Mphi _ | Print _ ->
      false

(* ------------------------------------------------------------------ *)
(* Rewriting *)

let map_operand f = function Reg r -> Reg (f r) | (Imm _ as o) -> o

(* Rewrite register uses (not defs, not phi sources). *)
let map_reg_uses (f : reg -> reg) (op : opcode) : opcode =
  let fo = map_operand f in
  match op with
  | Bin b -> Bin { b with l = fo b.l; r = fo b.r }
  | Un u -> Un { u with src = fo u.src }
  | Copy c -> Copy { c with src = fo c.src }
  | Load _ -> op
  | Store s -> Store { s with src = fo s.src }
  | Addr_of a -> Addr_of { a with off = fo a.off }
  | Ptr_load p -> Ptr_load { p with addr = fo p.addr }
  | Ptr_store p -> Ptr_store { p with addr = fo p.addr; src = fo p.src }
  | Call c -> Call { c with args = List.map fo c.args }
  | Dummy_aload _ | Exit_use _ -> op
  | Rphi _ | Mphi _ -> op
  | Print p -> Print { src = fo p.src }

(* Rewrite the defined register. *)
let map_reg_def (f : reg -> reg) (op : opcode) : opcode =
  match op with
  | Bin b -> Bin { b with dst = f b.dst }
  | Un u -> Un { u with dst = f u.dst }
  | Copy c -> Copy { c with dst = f c.dst }
  | Load l -> Load { l with dst = f l.dst }
  | Addr_of a -> Addr_of { a with dst = f a.dst }
  | Ptr_load p -> Ptr_load { p with dst = f p.dst }
  | Call c -> Call { c with dst = Option.map f c.dst }
  | Rphi p -> Rphi { p with dst = f p.dst }
  | Store _ | Ptr_store _ | Dummy_aload _ | Exit_use _ | Mphi _ | Print _ ->
      op

(* Rewrite memory resource uses (not defs, not memory-phi sources). *)
let map_mem_uses (f : Resource.t -> Resource.t) (op : opcode) : opcode =
  match op with
  | Load l -> Load { l with src = f l.src }
  | Ptr_load p -> Ptr_load { p with muses = List.map f p.muses }
  | Ptr_store p -> Ptr_store { p with muses = List.map f p.muses }
  | Call c -> Call { c with muses = List.map f c.muses }
  | Dummy_aload d -> Dummy_aload { muses = List.map f d.muses }
  | Exit_use e -> Exit_use { muses = List.map f e.muses }
  | Bin _ | Un _ | Copy _ | Store _ | Addr_of _ | Rphi _ | Mphi _ | Print _
    ->
      op

(* Rewrite memory resource defs (store target, mphi target, may-defs). *)
let map_mem_defs (f : Resource.t -> Resource.t) (op : opcode) : opcode =
  match op with
  | Store s -> Store { s with dst = f s.dst }
  | Mphi p -> Mphi { p with dst = f p.dst }
  | Ptr_store p -> Ptr_store { p with mdefs = List.map f p.mdefs }
  | Call c -> Call { c with mdefs = List.map f c.mdefs }
  | Bin _ | Un _ | Copy _ | Load _ | Addr_of _ | Ptr_load _ | Dummy_aload _
  | Exit_use _ | Rphi _ | Print _ ->
      op

let set_rphi_srcs (i : t) srcs =
  match i.op with
  | Rphi p -> i.op <- Rphi { p with srcs }
  | _ -> invalid_arg "Instr.set_rphi_srcs: not a register phi"

let set_mphi_srcs (i : t) srcs =
  match i.op with
  | Mphi p -> i.op <- Mphi { p with srcs }
  | _ -> invalid_arg "Instr.set_mphi_srcs: not a memory phi"

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let unop_name = function Neg -> "neg" | Lnot -> "not"
