(* Interval tree construction and normalisation (paper section 4.1).

   "An interval is a strongly connected component of a control flow
   graph."  The tree is built by SCC condensation: the non-trivial SCCs
   of the function are the outermost intervals; inside a component we
   delete the edges that enter its entry blocks (the back edges) and
   recompute SCCs to find the nested intervals.

   A {e proper} interval has a single entry block; its preheader is the
   unique outside predecessor.  An {e improper} interval has several
   entries; its preheader is the least common dominator of the entries
   (walked further up if that lands inside the interval).

   The {e root} of the tree is a pseudo-interval covering the whole
   function, so promotion also runs at the outermost scope and absorbs
   the loads/stores that inner intervals push into it.

   [normalise] establishes the structural preconditions the promoter
   relies on:
   - no critical edges anywhere,
   - the function entry is a dedicated empty preheader block,
   - every proper interval has a dedicated preheader (single outside
     predecessor whose only successor is the interval entry),
   - the target of every interval exit edge is a dedicated tail block
     with exactly one predecessor. *)

open Rp_ir

type t = {
  id : int;
  entries : Ids.IntSet.t;
  blocks : Ids.IntSet.t;  (** all member blocks, nested intervals included *)
  mutable children : t list;
  mutable preheader : Ids.bid;
      (** block at whose end preheader loads / dummy aliased loads go *)
  mutable exit_edges : (Ids.bid * Ids.bid) list;
      (** (src in interval, dst outside); dst is the tail block *)
  proper : bool;
  is_root : bool;
  depth : int;  (** nesting depth; root = 0 *)
}

type tree = {
  root : t;
  all : t list;  (** every interval, bottom-up (children before parents) *)
  innermost : int array;  (** innermost interval id per block; -1 = dead *)
}

let mem_block (iv : t) bid = Ids.IntSet.mem bid iv.blocks

(* ------------------------------------------------------------------ *)
(* Tree construction *)

let build (f : Func.t) (dom : Dom.t) : tree =
  Cfg.recompute_preds f;
  let live =
    Func.fold_blocks
      (fun acc b ->
        if Dom.reachable dom b.Block.bid then Ids.IntSet.add b.Block.bid acc
        else acc)
      Ids.IntSet.empty f
  in
  let next_id = ref 0 in
  let fresh_id () =
    let i = !next_id in
    incr next_id;
    i
  in
  let all = ref [] in
  (* [removed] is the set of edges deleted at the current nesting level
     (edges into the entries of the enclosing component). *)
  let rec components ~(nodes : Ids.IntSet.t) ~(removed : Ids.PairSet.t)
      ~(depth : int) : t list =
    let succs b =
      List.filter
        (fun s ->
          Ids.IntSet.mem s nodes && not (Ids.PairSet.mem (b, s) removed))
        (Block.succs (Func.block f b))
    in
    let sccs = Scc.compute ~nodes ~succs in
    List.filter_map
      (fun (c : Scc.component) ->
        if not (Scc.non_trivial c) then None
        else begin
          let blocks = c.nodes in
          (* entries: blocks with a predecessor outside the component in
             the full CFG *)
          let entries =
            Ids.IntSet.filter
              (fun b ->
                List.exists
                  (fun p ->
                    Ids.IntSet.mem p live && not (Ids.IntSet.mem p blocks))
                  (Func.block f b).Block.preds)
              blocks
          in
          (* guard against a component unreachable except through itself *)
          let entries =
            if Ids.IntSet.is_empty entries then
              Ids.IntSet.singleton (Ids.IntSet.min_elt blocks)
            else entries
          in
          let removed' =
            Ids.IntSet.fold
              (fun e acc ->
                List.fold_left
                  (fun acc p ->
                    if Ids.IntSet.mem p blocks then Ids.PairSet.add (p, e) acc
                    else acc)
                  acc (Func.block f e).Block.preds)
              entries removed
          in
          let children =
            components ~nodes:blocks ~removed:removed' ~depth:(depth + 1)
          in
          let exit_edges =
            Ids.IntSet.fold
              (fun b acc ->
                List.fold_left
                  (fun acc s ->
                    if Ids.IntSet.mem s blocks then acc else (b, s) :: acc)
                  acc
                  (Block.succs (Func.block f b)))
              blocks []
          in
          (* preheader: unique outside pred of a proper interval, or the
             least common dominator of the entries, lifted out of the
             interval if needed *)
          let proper = Ids.IntSet.cardinal entries = 1 in
          let preheader =
            if proper then begin
              let h = Ids.IntSet.min_elt entries in
              let outside =
                List.filter
                  (fun p -> not (Ids.IntSet.mem p blocks))
                  (Func.block f h).Block.preds
              in
              match outside with [ p ] -> p | _ :: _ | [] -> -1
              (* -1 = not normalised yet *)
            end
            else begin
              let lcd =
                Dom.least_common_dominator dom (Ids.IntSet.elements entries)
              in
              let rec lift b =
                if Ids.IntSet.mem b blocks then
                  match Dom.idom dom b with Some i -> lift i | None -> b
                else b
              in
              lift lcd
            end
          in
          let iv =
            {
              id = fresh_id ();
              entries;
              blocks;
              children;
              preheader;
              exit_edges;
              proper;
              is_root = false;
              depth = depth + 1;
            }
          in
          all := iv :: !all;
          Some iv
        end)
      sccs
  in
  let children = components ~nodes:live ~removed:Ids.PairSet.empty ~depth:0 in
  let root =
    {
      id = fresh_id ();
      entries = Ids.IntSet.singleton f.entry;
      blocks = live;
      children;
      preheader = f.entry;
      exit_edges = [];
      proper = true;
      is_root = true;
      depth = 0;
    }
  in
  all := root :: !all;
  (* innermost interval per block: deepest interval containing it *)
  let innermost = Array.make (Func.num_blocks f) (-1) in
  let rec mark iv =
    Ids.IntSet.iter (fun b -> innermost.(b) <- iv.id) iv.blocks;
    List.iter mark iv.children
  in
  mark root;
  (* bottom-up order: children strictly before parents *)
  let rec collect iv = List.concat_map collect iv.children @ [ iv ] in
  { root; all = collect root; innermost }

(* ------------------------------------------------------------------ *)
(* Normalisation *)

type edit =
  | Need_preheader of { entry : Ids.bid; outside_preds : Ids.bid list }
  | Need_tail of { src : Ids.bid; dst : Ids.bid }
  | Need_entry_block

let collect_edits (f : Func.t) (tree : tree) : edit list =
  let edits = ref [] in
  (* dedicated function entry: no body, no preds, single successor *)
  let e = Func.block f f.entry in
  let entry_ok =
    Iseq.is_empty e.body && e.preds = []
    && match e.term with Jmp _ -> true | Br _ | Ret _ -> false
  in
  if not entry_ok then edits := Need_entry_block :: !edits;
  List.iter
    (fun iv ->
      if not iv.is_root then begin
        if iv.proper then begin
          let h = Ids.IntSet.min_elt iv.entries in
          let outside =
            List.filter
              (fun p -> not (Ids.IntSet.mem p iv.blocks))
              (Func.block f h).Block.preds
          in
          let ok =
            match outside with
            | [ p ] -> Block.succs (Func.block f p) = [ h ]
            | [] | _ :: _ -> false
          in
          (* outside = [] means the function entry sits inside this
             component; the Need_entry_block edit emitted above creates
             an outside predecessor first, and the preheader edit is
             regenerated on a later round. *)
          if (not ok) && outside <> [] then
            edits := Need_preheader { entry = h; outside_preds = outside } :: !edits
        end;
        List.iter
          (fun (src, dst) ->
            if (Func.block f dst).Block.preds <> [ src ] then
              edits := Need_tail { src; dst } :: !edits)
          iv.exit_edges
      end)
    tree.all;
  !edits

let apply_edit (f : Func.t) = function
  | Need_entry_block ->
      let old_entry = f.entry in
      let p = Func.add_block f in
      p.term <- Jmp old_entry;
      f.entry <- p.bid;
      Func.set_block_freq f p.bid (Func.block_freq f old_entry);
      Func.set_edge_freq f ~src:p.bid ~dst:old_entry
        (Func.block_freq f old_entry);
      Cfg.recompute_preds f
  | Need_preheader { outside_preds = []; _ } ->
      (* the entry is only reachable through the interval itself; the
         Need_entry_block edit of the same round makes an outside
         predecessor appear, so this edit is regenerated and applied in
         a later round *)
      ()
  | Need_preheader { entry; outside_preds } ->
      let p = Func.add_block f in
      p.term <- Jmp entry;
      let total = ref 0.0 in
      List.iter
        (fun pr ->
          let ef = Func.edge_freq f ~src:pr ~dst:entry in
          total := !total +. ef;
          Block.retarget (Func.block f pr) ~old_t:entry ~new_t:p.bid;
          Hashtbl.remove f.efreq (pr, entry);
          Func.set_edge_freq f ~src:pr ~dst:p.bid ef)
        outside_preds;
      Func.set_block_freq f p.bid !total;
      Func.set_edge_freq f ~src:p.bid ~dst:entry !total;
      Cfg.recompute_preds f
  | Need_tail { src; dst } -> ignore (Cfg.split_edge f ~src ~dst)

(* Normalise the CFG for promotion and return the final interval tree.
   Pre-SSA only: edits do not fix up phi instructions beyond what
   [Cfg.split_edge] handles. *)
let normalise (f : Func.t) : tree =
  (* One edit per round: applying an edit can invalidate the
     preconditions of the others computed against the old tree, so the
     tree is rebuilt after every change.  Each edit adds one dedicated
     block that never needs editing again, so the number of rounds is
     bounded by the number of blocks the final CFG has.  Critical edges
     are re-split every round because an edit can create one (a new
     dedicated entry gives the old entry a second predecessor, turning
     a back edge into the old entry critical). *)
  let rec fix budget =
    if budget = 0 then failwith "Intervals.normalise: did not converge";
    Cfg.split_critical_edges f;
    let dom = Dom.compute f in
    let tree = build f dom in
    match collect_edits f tree with
    | [] -> tree
    | edit :: _ ->
        apply_edit f edit;
        fix (budget - 1)
  in
  fix ((Func.num_blocks f * 8) + 32)

(* Innermost interval containing block [b]. *)
let interval_of (tree : tree) (bid : Ids.bid) : t option =
  if bid >= Array.length tree.innermost || tree.innermost.(bid) < 0 then None
  else List.find_opt (fun iv -> iv.id = tree.innermost.(bid)) tree.all

(* Loop nesting depth of a block = depth of its innermost interval. *)
let loop_depth (tree : tree) (bid : Ids.bid) : int =
  match interval_of tree bid with Some iv -> iv.depth | None -> 0
