(* Length-prefixed JSON framing.  The decode side is written so that
   no byte sequence a peer can send raises: framing violations and
   undecodable documents come back as values ([Bad] / [Garbled]) and
   the server turns them into error responses.  The encode side is
   plain [Rp_obs.Json] construction — same emitter as the pipeline
   reports, so the protocol adds no dependencies. *)

module J = Rp_obs.Json
module P = Rp_core.Pipeline

let version = 1

let max_frame = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Transport *)

type conn = {
  input : bytes -> int -> int -> int;
  output : bytes -> int -> int -> unit;
  close : unit -> unit;
}

let conn_of_fd fd =
  let closed = ref false in
  {
    input = (fun buf off len -> Unix.read fd buf off len);
    output =
      (fun buf off len ->
        let written = ref 0 in
        while !written < len do
          written := !written + Unix.write fd buf (off + !written) (len - !written)
        done);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end);
  }

type frame = Frame of string | Eof | Bad of string

(* Read exactly [len] bytes; [`Eof n] reports how many arrived. *)
let read_exact conn buf len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match conn.input buf !got (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
  done;
  if !eof then `Eof !got else `Ok

let write_frame conn payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg
      (Printf.sprintf "Protocol.write_frame: %d bytes exceeds max_frame" len);
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  conn.output hdr 0 4;
  if len > 0 then conn.output (Bytes.of_string payload) 0 len

let read_frame conn : frame =
  let hdr = Bytes.create 4 in
  match read_exact conn hdr 4 with
  | `Eof 0 -> Eof
  | `Eof n -> Bad (Printf.sprintf "EOF inside frame header (%d/4 bytes)" n)
  | `Ok -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        Bad (Printf.sprintf "frame length %d out of bounds (max %d)" len max_frame)
      else if len = 0 then Frame ""
      else
        let payload = Bytes.create len in
        match read_exact conn payload len with
        | `Eof n ->
            Bad (Printf.sprintf "EOF inside frame payload (%d/%d bytes)" n len)
        | `Ok -> Frame (Bytes.unsafe_to_string payload))

(* ------------------------------------------------------------------ *)
(* Requests and responses *)

type compile = {
  target : [ `Source of string | `Workload of string ];
  options : P.options;
  deterministic : bool;
  deadline_s : float option;
      (* per-request deadline override; None means the server default.
         Deliberately not part of options: it must never enter the
         cache key (the same inputs produce the same report no matter
         how long the client was willing to wait). *)
}

type request = Compile of compile | Ping | Stats | Shutdown

type error_kind =
  | Bad_input
  | Fuel_exhausted
  | Timeout
  | Busy
  | Protocol_error
  | Shutting_down
  | Internal

type response =
  | Report of { cached : bool; report : string }
  | Error of { kind : error_kind; message : string }
  | Pong
  | Stats_reply of J.t
  | Shutdown_ack

let error_kind_to_string = function
  | Bad_input -> "bad_input"
  | Fuel_exhausted -> "fuel_exhausted"
  | Timeout -> "timeout"
  | Busy -> "busy"
  | Protocol_error -> "protocol_error"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_kind_of_string = function
  | "bad_input" -> Some Bad_input
  | "fuel_exhausted" -> Some Fuel_exhausted
  | "timeout" -> Some Timeout
  | "busy" -> Some Busy
  | "protocol_error" -> Some Protocol_error
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Options codec *)

(* The enum codecs live with their types ({!Rp_core.Pipeline},
   {!Rp_ssa.Incremental}); the protocol only re-exports the profile
   pair for its own callers. *)
let profile_to_string = P.profile_source_to_string
let profile_of_string = P.profile_source_of_string

let options_to_json ?(for_key = false) (o : P.options) : J.t =
  let c = o.P.promote in
  J.Obj
    ([
       ("engine", J.Str (Rp_ssa.Incremental.engine_to_string c.Rp_core.Promote.engine));
       ("allow_store_removal", J.Bool c.Rp_core.Promote.allow_store_removal);
       ( "min_profit",
         J.Float c.Rp_core.Promote.cost.Rp_core.Cost_model.min_profit );
       ("insert_dummies", J.Bool c.Rp_core.Promote.insert_dummies);
       ("profile", J.Str (profile_to_string o.P.profile));
       ("fuel", J.Int o.P.fuel);
       ("singleton_deref", J.Bool o.P.singleton_deref);
       ("checkpoints", J.Bool o.P.checkpoints);
       ("trace", J.Bool o.P.trace);
       (* the register budget changes the report bytes, so unlike
          jobs/interp it IS part of the cache key; encoded from the
          effective budget so a budget placed in the cost model and one
          placed in [options.regs] key identically *)
       ( "regs",
         match P.effective_regs o with Some k -> J.Int k | None -> J.Null );
       (* spill-order changes which webs a budgeted run admits, hence
          the report bytes: part of the key, encoded from the effective
          value like [regs] *)
       ("spill_order", J.Bool (P.effective_spill_order o));
       (* scalar replacement rewrites the program before lowering,
          hence the report bytes: part of the key *)
       ("scalrep", J.Bool o.P.scalrep);
     ]
    @
    (* jobs and interp are left out of the cache key on purpose: the
       deterministic report bytes are identical for every jobs value
       and for either interpreter engine *)
    if for_key then []
    else
      [
        ("jobs", J.Int o.P.jobs);
        ("interp", J.Str (P.interp_engine_to_string o.P.interp));
      ])

(* Total decode with typed field accessors: a missing field takes the
   default-options value (forward compatibility), a wrongly-typed one
   is an error. *)
type 'a field = Got of 'a | Missing | Wrong of string

let field obj name conv =
  match J.member obj name with
  | None -> Missing
  | Some v -> (
      match conv v with
      | Some x -> Got x
      | None -> Wrong (Printf.sprintf "field %S has the wrong type" name))

let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e

let take dflt = function
  | Got v -> Ok v
  | Missing -> Ok dflt
  | Wrong m -> Error m

let as_bool = function J.Bool b -> Some b | _ -> None
let as_int = function J.Int i -> Some i | _ -> None
let as_str = function J.Str s -> Some s | _ -> None

let as_float = function
  | J.Float f -> Some f
  | J.Int i -> Some (float_of_int i)
  | _ -> None

let options_of_json (v : J.t) : (P.options, string) result =
  let d = P.default_options in
  let dc = d.P.promote in
  let* engine =
    take dc.Rp_core.Promote.engine
      (field v "engine" (fun j ->
           Option.bind (as_str j) Rp_ssa.Incremental.engine_of_string))
  in
  let* allow_store_removal =
    take dc.Rp_core.Promote.allow_store_removal
      (field v "allow_store_removal" as_bool)
  in
  let* min_profit =
    take dc.Rp_core.Promote.cost.Rp_core.Cost_model.min_profit
      (field v "min_profit" as_float)
  in
  let* regs =
    take d.P.regs
      (field v "regs" (function
        | J.Null -> Some None
        | J.Int k -> Some (Some k)
        | _ -> None))
  in
  let* spill_order = take d.P.spill_order (field v "spill_order" as_bool) in
  let* scalrep = take d.P.scalrep (field v "scalrep" as_bool) in
  let* insert_dummies =
    take dc.Rp_core.Promote.insert_dummies (field v "insert_dummies" as_bool)
  in
  let* profile =
    take d.P.profile
      (field v "profile" (fun j -> Option.bind (as_str j) profile_of_string))
  in
  let* fuel = take d.P.fuel (field v "fuel" as_int) in
  let* singleton_deref =
    take d.P.singleton_deref (field v "singleton_deref" as_bool)
  in
  let* checkpoints = take d.P.checkpoints (field v "checkpoints" as_bool) in
  let* trace = take d.P.trace (field v "trace" as_bool) in
  let* jobs = take d.P.jobs (field v "jobs" as_int) in
  let* interp =
    take d.P.interp
      (field v "interp" (fun j ->
           Option.bind (as_str j) P.interp_engine_of_string))
  in
  if fuel < 0 then Error "field \"fuel\" must be non-negative"
  else if jobs < 1 then Error "field \"jobs\" must be at least 1"
  else if (match regs with Some k -> k < 1 | None -> false) then
    Error "field \"regs\" must be at least 1"
  else
    Ok
      {
        P.promote =
          {
            Rp_core.Promote.engine;
            allow_store_removal;
            cost = { Rp_core.Cost_model.min_profit; regs = None; spill_order = false };
            insert_dummies;
          };
        profile;
        fuel;
        singleton_deref;
        checkpoints;
        trace;
        jobs;
        interp;
        regs;
        spill_order;
        scalrep;
      }

let options_fingerprint ?for_key (o : P.options) : string =
  J.to_string ~minify:true (options_to_json ?for_key o)

(* ------------------------------------------------------------------ *)
(* Request codec *)

let request_to_json (r : request) : J.t =
  let base req rest = J.Obj ((("v", J.Int version) :: ("req", J.Str req) :: rest)) in
  match r with
  | Ping -> base "ping" []
  | Stats -> base "stats" []
  | Shutdown -> base "shutdown" []
  | Compile c ->
      base "compile"
        ((match c.target with
         | `Source s -> [ ("source", J.Str s) ]
         | `Workload w -> [ ("workload", J.Str w) ])
        @ [
            ("options", options_to_json c.options);
            ("deterministic", J.Bool c.deterministic);
          ]
        @
        match c.deadline_s with
        | None -> []
        | Some d -> [ ("deadline_s", J.Float d) ])

let check_version v =
  match J.member v "v" with
  | Some (J.Int n) when n = version -> Ok ()
  | Some (J.Int n) ->
      Error (Printf.sprintf "protocol version %d not supported (want %d)" n version)
  | Some _ -> Error "field \"v\" is not an integer"
  | None -> Error "missing protocol version field \"v\""

let request_of_json (v : J.t) : (request, string) result =
  let* () = check_version v in
  match J.member v "req" with
  | Some (J.Str "ping") -> Ok Ping
  | Some (J.Str "stats") -> Ok Stats
  | Some (J.Str "shutdown") -> Ok Shutdown
  | Some (J.Str "compile") -> (
      let* target =
        match (J.member v "source", J.member v "workload") with
        | Some (J.Str s), None -> Ok (`Source s)
        | None, Some (J.Str w) -> Ok (`Workload w)
        | Some _, Some _ -> Error "compile request has both source and workload"
        | Some _, None -> Error "field \"source\" is not a string"
        | None, Some _ -> Error "field \"workload\" is not a string"
        | None, None -> Error "compile request needs source or workload"
      in
      let* options =
        match J.member v "options" with
        | None -> Ok P.default_options
        | Some o -> options_of_json o
      in
      let* deterministic = take false (field v "deterministic" as_bool) in
      match take None (field v "deadline_s" (fun j -> Option.map Option.some (as_float j))) with
      | Error m -> Error m
      | Ok deadline_s ->
          Ok (Compile { target; options; deterministic; deadline_s }))
  | Some (J.Str other) -> Error (Printf.sprintf "unknown request %S" other)
  | Some _ -> Error "field \"req\" is not a string"
  | None -> Error "missing request field \"req\""

(* ------------------------------------------------------------------ *)
(* Response codec *)

let response_to_json (r : response) : J.t =
  let base resp rest = J.Obj (("v", J.Int version) :: ("resp", J.Str resp) :: rest) in
  match r with
  | Pong -> base "pong" []
  | Shutdown_ack -> base "shutdown_ack" []
  | Stats_reply doc -> base "stats" [ ("report", doc) ]
  | Report { cached; report } ->
      (* the report travels as an escaped string, not an embedded tree:
         the client recovers the one-shot document byte-for-byte with
         no float-reprint hazard *)
      base "report" [ ("cached", J.Bool cached); ("report", J.Str report) ]
  | Error { kind; message } ->
      base "error"
        [
          ("kind", J.Str (error_kind_to_string kind));
          ("message", J.Str message);
        ]

let response_of_json (v : J.t) : (response, string) result =
  let* () = check_version v in
  match J.member v "resp" with
  | Some (J.Str "pong") -> Ok Pong
  | Some (J.Str "shutdown_ack") -> Ok Shutdown_ack
  | Some (J.Str "stats") -> (
      match J.member v "report" with
      | Some doc -> Ok (Stats_reply doc)
      | None -> Error "stats response has no report")
  | Some (J.Str "report") -> (
      match (J.member v "cached", J.member v "report") with
      | Some (J.Bool cached), Some (J.Str report) ->
          Ok (Report { cached; report })
      | _ -> Error "malformed report response")
  | Some (J.Str "error") -> (
      match (J.member v "kind", J.member v "message") with
      | Some (J.Str k), Some (J.Str message) -> (
          match error_kind_of_string k with
          | Some kind -> Ok (Error { kind; message })
          | None -> Result.Error (Printf.sprintf "unknown error kind %S" k))
      | _ -> Result.Error "malformed error response")
  | Some (J.Str other) -> Error (Printf.sprintf "unknown response %S" other)
  | Some _ -> Error "field \"resp\" is not a string"
  | None -> Error "missing response field \"resp\""

(* ------------------------------------------------------------------ *)
(* Framed send/receive *)

type 'a framed = Msg of 'a | End | Garbled of string

let send conn to_json v =
  write_frame conn (J.to_string ~minify:true (to_json v))

let recv conn of_json : 'a framed =
  match read_frame conn with
  | Eof -> End
  | Bad m -> Garbled m
  | Frame payload -> (
      match J.parse payload with
      | Error m -> Garbled m
      | Ok doc -> ( match of_json doc with Ok v -> Msg v | Error m -> Garbled m))

let send_request conn r = send conn request_to_json r
let send_response conn r = send conn response_to_json r
let recv_request conn = recv conn request_of_json
let recv_response conn = recv conn response_of_json
