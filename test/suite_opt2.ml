(* Tests for the second-wave SSA optimizations: SCCP, GVN, DSE. *)

open Rp_ir
open Rp_analysis
open Rp_ssa
module I = Rp_interp.Interp

let prep src =
  let prog = Rp_minic.Lower.compile src in
  List.iter (fun f -> ignore (Intervals.normalise f)) prog.Func.funcs;
  List.iter Construct.run prog.Func.funcs;
  prog

let count pred prog =
  List.fold_left
    (fun acc (f : Func.t) ->
      Func.fold_blocks
        (fun acc b ->
          List.fold_left
            (fun acc (i : Instr.t) -> if pred i.Instr.op then acc + 1 else acc)
            acc (Block.instrs b))
        acc f)
    0 prog.Func.funcs

let live_blocks prog =
  List.fold_left
    (fun acc (f : Func.t) ->
      Func.fold_blocks (fun acc _ -> acc + 1) acc f)
    0 prog.Func.funcs

let behaviour_preserved name src transform =
  let prog = prep src in
  let before = I.run prog in
  transform prog;
  List.iter (Verify.assert_ok prog.Func.vartab) prog.Func.funcs;
  let after = I.run prog in
  Alcotest.(check bool) (name ^ ": behaviour") true
    (I.same_behaviour before after);
  prog

(* ------------------------------------------------------------------ *)
(* SCCP *)

let test_sccp_folds_constants () =
  let src =
    {|
int main() {
  int a = 3;
  int b = 4;
  int c = a * b + 2;
  print(c);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "sccp const" src (fun prog ->
        List.iter (fun f -> ignore (Rp_opt.Sccp.run f)) prog.Func.funcs;
        Rp_opt.Cleanup.run_prog prog)
  in
  (* print must now take the folded immediate *)
  let folded = ref false in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_blocks
        (fun b ->
          Iseq.iter
            (fun (i : Instr.t) ->
              match i.Instr.op with
              | Instr.Print { src = Instr.Imm 14 } -> folded := true
              | _ -> ())
            b.Block.body)
        f)
    prog.Func.funcs;
  Alcotest.(check bool) "print takes immediate 14" true !folded

let test_sccp_folds_branches () =
  let src =
    {|
int g = 0;
int main() {
  int flag = 1;
  if (flag) { g = 10; } else { g = 20; }
  if (3 < 2) { g = g + 100; }
  print(g);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "sccp branch" src (fun prog ->
        List.iter
          (fun f ->
            ignore (Rp_opt.Sccp.run f);
            Cfg.remove_unreachable f)
          prog.Func.funcs;
        Rp_opt.Cleanup.run_prog prog)
  in
  (* the never-taken branches are gone *)
  let main = Option.get (Func.find_func prog "main") in
  let brs =
    Func.fold_blocks
      (fun acc b ->
        match b.Block.term with Block.Br _ -> acc + 1 | _ -> acc)
      0 main
  in
  Alcotest.(check int) "no conditional branches left" 0 brs;
  ignore (live_blocks prog)

let test_sccp_conditional_constant () =
  (* the classic SCCP win: x is 5 on both paths of a branch SCCP can
     decide, so the phi folds — plain constant propagation would not
     see it *)
  let src =
    {|
int main() {
  int x = 0;
  if (1 == 1) { x = 5; } else { x = x + 1; }
  print(x + 2);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "sccp conditional" src (fun prog ->
        List.iter (fun f -> ignore (Rp_opt.Sccp.run f)) prog.Func.funcs;
        Rp_opt.Cleanup.run_prog prog)
  in
  let folded = ref false in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_blocks
        (fun b ->
          Iseq.iter
            (fun (i : Instr.t) ->
              match i.Instr.op with
              | Instr.Print { src = Instr.Imm 7 } -> folded := true
              | _ -> ())
            b.Block.body)
        f)
    prog.Func.funcs;
  Alcotest.(check bool) "phi folded to 7" true !folded

let test_sccp_no_trap_folding () =
  (* 1/0 must still trap at runtime, not be folded away or crash SCCP *)
  let src = "int main() { int z = 0; print(10 / z); return 0; }" in
  let prog = prep src in
  List.iter (fun f -> ignore (Rp_opt.Sccp.run f)) prog.Func.funcs;
  match I.run prog with
  | exception I.Runtime_error _ -> ()
  | _ -> Alcotest.fail "division by zero disappeared"

let test_sccp_on_workloads () =
  List.iter
    (fun (w : Rp_workloads.Registry.workload) ->
      ignore
        (behaviour_preserved
           ("sccp " ^ w.Rp_workloads.Registry.name)
           w.Rp_workloads.Registry.source
           (fun prog ->
             List.iter (fun f -> ignore (Rp_opt.Sccp.run f)) prog.Func.funcs;
             Rp_opt.Cleanup.run_prog prog)))
    [ List.hd Rp_workloads.Registry.all ]

(* ------------------------------------------------------------------ *)
(* GVN *)

let test_gvn_arithmetic () =
  let src =
    {|
int main() {
  int a = 7;
  int b = 9;
  int x = a * b;
  int y = b * a;      // commutative duplicate
  int z = a * b;      // exact duplicate
  print(x + y + z);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "gvn arith" src (fun prog ->
        List.iter (fun f -> ignore (Rp_opt.Gvn.run f)) prog.Func.funcs;
        Rp_opt.Cleanup.run_prog prog)
  in
  let muls =
    count (function Instr.Bin { op = Instr.Mul; _ } -> true | _ -> false) prog
  in
  Alcotest.(check int) "one multiply survives" 1 muls

let test_gvn_loads_same_version () =
  (* two loads of the same memory SSA version see the same value: the
     paper's point about treating memory uniformly *)
  let src =
    {|
int g = 5;
int main() {
  int a = g;
  int b = g;          // same version of g: redundant load
  print(a + b);
  g = 7;
  int c = g;          // new version: must load again
  print(c);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "gvn loads" src (fun prog ->
        List.iter (fun f -> ignore (Rp_opt.Gvn.run f)) prog.Func.funcs;
        Rp_opt.Cleanup.run_prog prog)
  in
  let loads = count (function Instr.Load _ -> true | _ -> false) prog in
  Alcotest.(check int) "two loads survive" 2 loads

let test_gvn_respects_dominance () =
  (* equal expressions on sibling branches must NOT be merged *)
  let src =
    {|
int g = 0;
int main() {
  int a = 3;
  int r = 0;
  if (g) { r = a + 1; } else { r = a + 1; }
  print(r);
  return 0;
}
|}
  in
  ignore
    (behaviour_preserved "gvn dominance" src (fun prog ->
         List.iter (fun f -> ignore (Rp_opt.Gvn.run f)) prog.Func.funcs;
         Rp_opt.Cleanup.run_prog prog))

let test_gvn_on_workloads () =
  List.iter
    (fun (w : Rp_workloads.Registry.workload) ->
      ignore
        (behaviour_preserved
           ("gvn " ^ w.Rp_workloads.Registry.name)
           w.Rp_workloads.Registry.source
           (fun prog ->
             List.iter (fun f -> ignore (Rp_opt.Gvn.run f)) prog.Func.funcs;
             Rp_opt.Cleanup.run_prog prog)))
    Rp_workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* DSE *)

let test_dse_removes_overwritten_store () =
  let src =
    {|
int g = 0;
int main() {
  g = 1;        // dead: overwritten before any observation
  g = 2;
  print(g);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "dse overwrite" src (fun prog ->
        ignore (Rp_opt.Dse.run_prog prog))
  in
  let stores = count (function Instr.Store _ -> true | _ -> false) prog in
  Alcotest.(check int) "one store survives" 1 stores

let test_dse_keeps_observed_stores () =
  let src =
    {|
int g = 0;
void peek() { print(g); }
int main() {
  g = 1;        // observed by the call
  peek();
  g = 2;        // observed by print and by the exit
  print(g);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "dse observed" src (fun prog ->
        ignore (Rp_opt.Dse.run_prog prog))
  in
  let stores = count (function Instr.Store _ -> true | _ -> false) prog in
  Alcotest.(check int) "both stores survive" 2 stores

let test_dse_keeps_exit_visible_stores () =
  (* a store with no later use in this function is still live: the
     caller can observe the global (Exit_use) *)
  let src =
    {|
int g = 0;
void set() { g = 42; }
int main() { set(); print(g); return 0; }
|}
  in
  let prog =
    behaviour_preserved "dse exit" src (fun prog ->
        ignore (Rp_opt.Dse.run_prog prog))
  in
  let stores = count (function Instr.Store _ -> true | _ -> false) prog in
  Alcotest.(check int) "the store in set() survives" 1 stores

let test_dse_addr_local_dead_at_exit () =
  (* an address-taken local's last store is dead at function exit *)
  let src =
    {|
int use(int *p) { return *p; }
int main() {
  int x = 0;
  int r = use(&x);
  x = 99;          // dead: x is never observable again
  print(r);
  return 0;
}
|}
  in
  let prog =
    behaviour_preserved "dse local" src (fun prog ->
        ignore (Rp_opt.Dse.run_prog prog))
  in
  let dead_99 =
    count
      (function Instr.Store { src = Instr.Imm 99; _ } -> true | _ -> false)
      prog
  in
  Alcotest.(check int) "the dead store is gone" 0 dead_99

(* ------------------------------------------------------------------ *)
(* interplay: the full optimizing pipeline stays correct *)

let test_all_passes_after_promotion () =
  List.iter
    (fun (w : Rp_workloads.Registry.workload) ->
      let report =
        Rp_core.Pipeline.run
          ~options:
            { Rp_core.Pipeline.default_options with fuel = 80_000_000 }
          w.Rp_workloads.Registry.source
      in
      let prog = report.Rp_core.Pipeline.prog in
      List.iter
        (fun f ->
          ignore (Rp_opt.Sccp.run f);
          ignore (Rp_opt.Gvn.run f))
        prog.Func.funcs;
      ignore (Rp_opt.Dse.run_prog prog);
      Rp_opt.Cleanup.run_prog prog;
      List.iter (Verify.assert_ok prog.Func.vartab) prog.Func.funcs;
      let final = I.run ~fuel:80_000_000 prog in
      Alcotest.(check bool)
        (w.Rp_workloads.Registry.name ^ ": promote+sccp+gvn+dse behaviour")
        true
        (I.same_behaviour report.Rp_core.Pipeline.baseline final))
    Rp_workloads.Registry.all

let suite =
  [
    Alcotest.test_case "sccp folds constants" `Quick test_sccp_folds_constants;
    Alcotest.test_case "sccp folds branches" `Quick test_sccp_folds_branches;
    Alcotest.test_case "sccp conditional constant" `Quick
      test_sccp_conditional_constant;
    Alcotest.test_case "sccp preserves traps" `Quick test_sccp_no_trap_folding;
    Alcotest.test_case "sccp on workloads" `Quick test_sccp_on_workloads;
    Alcotest.test_case "gvn arithmetic" `Quick test_gvn_arithmetic;
    Alcotest.test_case "gvn same-version loads" `Quick test_gvn_loads_same_version;
    Alcotest.test_case "gvn respects dominance" `Quick test_gvn_respects_dominance;
    Alcotest.test_case "gvn on workloads" `Slow test_gvn_on_workloads;
    Alcotest.test_case "dse overwritten store" `Quick test_dse_removes_overwritten_store;
    Alcotest.test_case "dse observed stores" `Quick test_dse_keeps_observed_stores;
    Alcotest.test_case "dse exit-visible stores" `Quick test_dse_keeps_exit_visible_stores;
    Alcotest.test_case "dse dead local store" `Quick test_dse_addr_local_dead_at_exit;
    Alcotest.test_case "promote+sccp+gvn+dse on workloads" `Slow
      test_all_passes_after_promotion;
  ]
