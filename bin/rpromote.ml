(* rpromote — command-line driver for the register promotion pipeline.

     rpromote run FILE            interpret a MiniC program
     rpromote promote FILE        run the full pipeline, report counts
     rpromote dump FILE           print the IR at each pipeline stage
     rpromote workloads           list the built-in benchmark programs
     rpromote serve               run the compile daemon
     rpromote client FILE        compile through a running daemon

   A FILE of "-" reads from stdin; built-in workload names (go, li,
   ijpeg, ...) are accepted wherever a file is.

   Exit codes: 0 success, 1 input or runtime error (bad source, failed
   run, unreachable daemon), 2 usage error (bad flags or arguments). *)

module P = Rp_core.Pipeline
module I = Rp_interp.Interp
open Rp_ir

(* a bad flag *value* discovered after cmdliner parsing (unknown
   engine name, --jobs 0, ...): usage error, exit code 2 *)
exception Usage_error of string

(* A FILE argument that names no registered workload falls back to the
   filesystem.  A bare lowercase name that also names no file was
   almost certainly a misspelt workload, so it gets the usage-error
   exit (2) and a pointer at the registry instead of a bare ENOENT. *)
let looks_like_workload s =
  s <> ""
  && (s.[0] >= 'a' && s.[0] <= 'z')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       s

let read_source path =
  match Rp_workloads.Registry.find path with
  | Some w -> w.Rp_workloads.Registry.source
  | None ->
      if path = "-" then In_channel.input_all stdin
      else if looks_like_workload path && not (Sys.file_exists path) then
        raise
          (Usage_error
             (Printf.sprintf
                "unknown workload '%s' (rpromote --list-workloads prints \
                 the registry)"
                path))
      else In_channel.with_open_text path In_channel.input_all

(* run a command body, mapping the pipeline's exceptions to clean
   one-line diagnostics and the exit-code contract above.  A real
   [Invalid_argument] is a bug and must propagate as one. *)
let guarded f =
  try f () with
  | Rp_minic.Lexer.Error m
  | Rp_minic.Parser.Error m
  | Rp_minic.Sema.Error m
  | Rp_minic.Lower.Error m ->
      Printf.eprintf "rpromote: %s\n" m;
      1
  | Rp_interp.Interp.Runtime_error m ->
      Printf.eprintf "rpromote: runtime error: %s\n" m;
      1
  | Rp_interp.Interp.Out_of_fuel budget ->
      Printf.eprintf
        "rpromote: interpreter fuel exhausted (budget %d); raise --fuel\n"
        budget;
      1
  | Sys_error m ->
      Printf.eprintf "rpromote: %s\n" m;
      1
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "rpromote: %s: %s%s\n" fn (Unix.error_message e)
        (if arg = "" then "" else " (" ^ arg ^ ")");
      1
  | Rp_serve.Client.Transport_error m ->
      Printf.eprintf "rpromote: transport error: %s\n" m;
      1
  | Usage_error m ->
      Printf.eprintf "rpromote: %s\n" m;
      2

(* One parsing convention for every enum flag: each type supplies a
   symmetric [of_string]/[to_string] pair, and the CLI maps a rejected
   name to a usage error. *)
let parse_enum ~what of_string s =
  match of_string s with
  | Some v -> v
  | None -> raise (Usage_error (Printf.sprintf "unknown %s: %s" what s))

let engine_of_string =
  parse_enum ~what:"IDF engine" Rp_ssa.Incremental.engine_of_string

let interp_of_string =
  parse_enum ~what:"interpreter engine" P.interp_engine_of_string

let profile_of_string =
  parse_enum ~what:"profile source" P.profile_source_of_string

(* pipeline options from the promote/client flag set *)
let mk_options ~fuel ~profile ~static_profile ~no_store_removal
    ~singleton_deref ~engine ~min_profit ~regs ~spill_order ~scalrep
    ~checkpoints ~trace ~jobs ~interp () =
  (match regs with
  | Some k when k < 1 -> raise (Usage_error "--regs must be at least 1")
  | _ -> ());
  if spill_order && regs = None then
    raise (Usage_error "--spill-order needs a --regs budget");
  {
    P.promote =
      {
        Rp_core.Promote.engine = engine_of_string engine;
        allow_store_removal = not no_store_removal;
        cost = { Rp_core.Cost_model.min_profit; regs = None; spill_order = false };
        insert_dummies = true;
      };
    profile =
      (* --profile wins; --static-profile is the older spelling *)
      (match profile with
      | Some s -> profile_of_string s
      | None -> if static_profile then P.Static_estimate else P.Measured);
    fuel;
    singleton_deref;
    checkpoints;
    (* the JSON report carries the per-pass timings, so --json
       implies collecting the trace *)
    trace;
    jobs;
    interp = interp_of_string interp;
    regs;
    spill_order;
    scalrep;
  }

(* ------------------------------------------------------------------ *)

let cmd_run path fuel =
 guarded @@ fun () ->
  let src = read_source path in
  let prog = Rp_minic.Lower.compile src in
  let r = I.run ~fuel prog in
  List.iter (fun v -> Printf.printf "%d\n" v) r.I.output;
  Printf.printf "exit value: %d\n" r.I.exit_value;
  Printf.printf "dynamic loads: %d  stores: %d  aliased: %d/%d  instrs: %d\n"
    r.I.counters.I.loads r.I.counters.I.stores r.I.counters.I.aliased_loads
    r.I.counters.I.aliased_stores r.I.counters.I.instrs;
  0

(* write the JSON report; "-" means stdout *)
let emit_json ~label ~dest report =
  let doc = Rp_obs.Json.to_string (P.json_report ~label report) in
  if dest = "-" then print_string doc
  else Out_channel.with_open_text dest (fun oc -> output_string oc doc)

let cmd_promote path fuel profile static_profile no_store_removal
    singleton_deref engine min_profit regs spill_order scalrep json trace
    checkpoints jobs deterministic interp =
 guarded @@ fun () ->
  if jobs < 1 then raise (Usage_error "--jobs must be at least 1");
  Rp_obs.Trace.set_deterministic deterministic;
  let src = read_source path in
  let options =
    mk_options ~fuel ~profile ~static_profile ~no_store_removal
      ~singleton_deref ~engine ~min_profit ~regs ~spill_order ~scalrep
      ~checkpoints
      ~trace:(trace || json <> None)
      ~jobs ~interp ()
  in
  let report = P.run ~options src in
  (match json with
  | Some dest -> emit_json ~label:path ~dest report
  | None -> ());
  if trace then begin
    prerr_endline "-- trace ----------------------------------------------";
    Format.eprintf "%a@?" Rp_obs.Trace.pp_spans (Rp_obs.Trace.spans ())
  end;
  let b = report.P.dynamic_before and a = report.P.dynamic_after in
  (* with the JSON document on stdout, keep stdout parseable *)
  if json <> Some "-" then begin
  Printf.printf "behaviour preserved : %b\n" report.P.behaviour_ok;
  Printf.printf "static loads        : %d -> %d\n"
    report.P.static_before.Rp_core.Stats.loads
    report.P.static_after.Rp_core.Stats.loads;
  Printf.printf "static stores       : %d -> %d\n"
    report.P.static_before.Rp_core.Stats.stores
    report.P.static_after.Rp_core.Stats.stores;
  Printf.printf "dynamic loads       : %d -> %d\n" b.I.loads a.I.loads;
  Printf.printf "dynamic stores      : %d -> %d\n" b.I.stores a.I.stores;
  let s = report.P.promote_stats in
  Printf.printf
    "webs                : %d seen, %d promoted (%d no-defs, %d with store \
     removal),\n\
    \                      %d skipped on profit, %d on pressure, %d malformed\n"
    s.Rp_core.Promote.webs_seen s.Rp_core.Promote.webs_promoted
    s.Rp_core.Promote.webs_promoted_no_defs
    s.Rp_core.Promote.webs_store_removal
    s.Rp_core.Promote.webs_skipped_profit
    s.Rp_core.Promote.webs_skipped_pressure
    s.Rp_core.Promote.webs_skipped_malformed;
  let sum get =
    List.fold_left (fun acc fp -> acc + get fp) 0 report.P.pressure
  in
  let colors_b = sum (fun fp -> fp.P.fp_before.Rp_regalloc.Color.s_colors)
  and colors_a = sum (fun fp -> fp.P.fp_after.Rp_regalloc.Color.s_colors) in
  (match report.P.pressure_regs with
  | Some k ->
      Printf.printf
        "pressure            : colors %d -> %d, predicted spills at %d regs \
         %d -> %d\n"
        colors_b colors_a k
        (sum (fun fp ->
             Option.value fp.P.fp_before.Rp_regalloc.Color.s_spills ~default:0))
        (sum (fun fp ->
             Option.value fp.P.fp_after.Rp_regalloc.Color.s_spills ~default:0))
  | None ->
      Printf.printf "pressure            : colors %d -> %d (unbounded)\n"
        colors_b colors_a);
  Printf.printf
    "edits               : %d loads replaced, %d loads inserted, %d stores \
     inserted,\n\
    \                      %d stores deleted, %d register phis added\n"
    s.Rp_core.Promote.loads_replaced s.Rp_core.Promote.loads_inserted
    s.Rp_core.Promote.stores_inserted s.Rp_core.Promote.stores_deleted
    s.Rp_core.Promote.reg_phis_added
  end;
  if report.P.behaviour_ok then 0 else 1

let cmd_baseline path fuel =
 guarded @@ fun () ->
  let src = read_source path in
  let prog, trees = P.prepare src in
  let before = I.run ~fuel prog in
  I.apply_profile prog before;
  ignore (Rp_baselines.Loop_promotion.promote_prog prog trees);
  Rp_opt.Cleanup.run_prog prog;
  let after = I.run ~fuel prog in
  Printf.printf "behaviour preserved : %b\n" (I.same_behaviour before after);
  Printf.printf "dynamic loads       : %d -> %d\n" before.I.counters.I.loads
    after.I.counters.I.loads;
  Printf.printf "dynamic stores      : %d -> %d\n" before.I.counters.I.stores
    after.I.counters.I.stores;
  if I.same_behaviour before after then 0 else 1

let cmd_dump path stage scalrep =
 guarded @@ fun () ->
  let src = read_source path in
  let options = { P.default_options with P.scalrep } in
  let dump prog =
    print_string (Pp.prog_to_string prog);
    0
  in
  match stage with
  | "lowered" -> dump (fst (P.frontend ~options src))
  | "normalised" ->
      let prog = fst (P.frontend ~options src) in
      List.iter
        (fun f -> ignore (Rp_analysis.Intervals.normalise f))
        prog.Func.funcs;
      dump prog
  | "ssa" ->
      let prog, _ = P.prepare ~options src in
      dump prog
  | "promoted" ->
      let report = P.run ~options src in
      dump report.P.prog
  | s ->
      raise
        (Usage_error
           ("unknown stage " ^ s ^ " (want lowered|normalised|ssa|promoted)"))

let cmd_workloads () =
  List.iter
    (fun (w : Rp_workloads.Registry.workload) ->
      Printf.printf "%-8s %s\n" w.Rp_workloads.Registry.name
        w.Rp_workloads.Registry.description)
    Rp_workloads.Registry.all;
  0

(* ------------------------------------------------------------------ *)
(* Compile service *)

module Server = Rp_serve.Server
module Client = Rp_serve.Client
module Mux = Rp_serve.Mux
module Proto = Rp_serve.Protocol

let cmd_serve socket jobs max_inflight deadline cache_mb cache_entries
    cache_dir store_mb shards =
 guarded @@ fun () ->
  if jobs < 1 then raise (Usage_error "--jobs must be at least 1");
  if max_inflight < 1 then
    raise (Usage_error "--max-inflight must be at least 1");
  if deadline < 0.0 then raise (Usage_error "--deadline must not be negative");
  if cache_mb < 0 then raise (Usage_error "--cache-mb must not be negative");
  if cache_entries < 0 then
    raise (Usage_error "--cache-entries must not be negative");
  if store_mb < 0 then raise (Usage_error "--store-mb must not be negative");
  if shards < 1 then raise (Usage_error "--shards must be at least 1");
  let mk_config ~cache_dir =
    {
      Mux.jobs;
      max_inflight;
      deadline_s = deadline;
      cache_max_bytes = cache_mb * 1024 * 1024;
      cache_max_entries = cache_entries;
      cache_dir;
      store_max_bytes = store_mb * 1024 * 1024;
      wq_high_water = Mux.default_config.Mux.wq_high_water;
      max_pipeline = Mux.default_config.Mux.max_pipeline;
    }
  in
  if shards = 1 then begin
    let m = Mux.create ~config:(mk_config ~cache_dir) () in
    Printf.eprintf "rpromote: serving on %s\n%!" socket;
    Mux.serve_unix m ~path:socket;
    Printf.eprintf "rpromote: daemon stopped\n%!";
    0
  end
  else begin
    let shard_path i = Printf.sprintf "%s.shard%d" socket i in
    (* shard children must fork before this process creates any domain
       (forking a multi-domain OCaml runtime is unsupported), so the
       router's own Mux is created only after every fork *)
    let pids =
      List.init shards (fun i ->
          match Unix.fork () with
          | 0 ->
              let cache_dir =
                Option.map
                  (fun d -> Filename.concat d (Printf.sprintf "shard%d" i))
                  cache_dir
              in
              let m = Mux.create ~config:(mk_config ~cache_dir) () in
              Mux.serve_unix m ~path:(shard_path i);
              Stdlib.exit 0
          | pid -> pid)
    in
    let router =
      Mux.create
        ~shards:(Array.init shards shard_path)
        ~config:
          {
            (mk_config ~cache_dir:None) with
            Mux.max_inflight = max_inflight * shards;
          }
        ()
    in
    Printf.eprintf "rpromote: serving on %s (%d shards)\n%!" socket shards;
    Mux.serve_unix router ~path:socket;
    List.iter
      (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      pids;
    Printf.eprintf "rpromote: daemon stopped\n%!";
    0
  end

let cmd_client socket path op fuel profile static_profile no_store_removal
    singleton_deref engine min_profit regs spill_order scalrep json
    deterministic interp deadline =
 guarded @@ fun () ->
  let with_client f =
    let c = Client.connect ~path:socket in
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)
  in
  match op with
  | `Conflict ->
      raise (Usage_error "--ping, --stats and --shutdown are exclusive")
  | `Ping ->
      with_client @@ fun c ->
      if Client.ping c then begin
        print_endline "pong";
        0
      end
      else begin
        prerr_endline "rpromote: daemon did not answer ping";
        1
      end
  | `Stats ->
      with_client @@ fun c ->
      print_string (Rp_obs.Json.to_string (Client.stats c));
      0
  | `Shutdown ->
      with_client @@ fun c ->
      if Client.shutdown c then 0
      else begin
        prerr_endline "rpromote: daemon did not acknowledge shutdown";
        1
      end
  | `Compile -> (
      let path =
        match path with
        | Some p -> p
        | None -> raise (Usage_error "client: FILE required to compile")
      in
      let target =
        match Rp_workloads.Registry.find path with
        | Some w -> `Workload w.Rp_workloads.Registry.name
        | None -> `Source (read_source path)
      in
      let options =
        mk_options ~fuel ~profile ~static_profile ~no_store_removal
          ~singleton_deref ~engine ~min_profit ~regs ~spill_order ~scalrep
          ~checkpoints:false ~trace:true ~jobs:1 ~interp ()
      in
      with_client @@ fun c ->
      match Client.compile c { Proto.target; options; deterministic; deadline_s = deadline } with
      | Proto.Report { cached; report } ->
          (match json with
          | "-" -> print_string report
          | dest ->
              Out_channel.with_open_text dest (fun oc -> output_string oc report));
          Printf.eprintf "rpromote: %s\n" (if cached then "cache hit" else "compiled");
          0
      | Proto.Error { kind; message } ->
          Printf.eprintf "rpromote: %s: %s\n"
            (Proto.error_kind_to_string kind)
            message;
          1
      | Proto.Pong | Proto.Stats_reply _ | Proto.Shutdown_ack ->
          prerr_endline "rpromote: unexpected reply to compile request";
          1)

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing *)

open Cmdliner

(* the exit-code contract, surfaced in every --help page *)
let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:
        "on input or runtime errors: unparseable source, a failed run, an \
         unreachable daemon, a compile request the daemon refused.";
    Cmd.Exit.info 2 ~doc:"on usage errors: unknown flags or bad argument values.";
  ]

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"MiniC source file, '-' for stdin, or a built-in workload name.")

let fuel_arg =
  Arg.(
    value
    & opt int 50_000_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Interpreter instruction budget.")

(* --engine is taken by the IDF engine choice, so the interpreter
   selection travels under its own name *)
let interp_arg =
  Arg.(
    value & opt string "flat"
    & info [ "interp" ] ~docv:"ENGINE"
        ~doc:
          "Interpreter for the profiling and measuring runs: $(b,flat) (the \
           decoded engine, default), $(b,tree) (the reference walker), \
           $(b,reg) (the register-allocated bytecode backend) or $(b,fused) \
           (the register backend with superinstruction fusion). All four \
           produce identical reports.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"SOURCE"
        ~doc:
          "Profile source: $(b,measured) (run the interpreter, the default) \
           or $(b,static) (the loop-depth estimate). Overrides \
           $(b,--static-profile).")

let regs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "regs" ] ~docv:"K"
        ~doc:
          "Register budget for pressure-aware promotion: per interval, webs \
           are promoted in decreasing profit order only while the predicted \
           register pressure stays within $(docv). Also the budget at which \
           the report's predicted spill counts are computed. Without it \
           promotion is unbounded (the paper's behaviour).")

let spill_order_arg =
  Arg.(
    value & flag
    & info [ "spill-order" ]
        ~doc:
          "With $(b,--regs): order and admit webs by the allocator's \
           predicted spill-count increase (spill-cost-weighted profit) \
           instead of the unit live-range growth estimate.")

let scalrep_arg =
  Arg.(
    value & flag
    & info [ "scalrep" ]
        ~doc:
          "Scalar replacement of affine array references: before lowering, \
           rewrite eligible $(b,for) loops so array elements addressed at \
           constant offsets from the induction variable (or loop-invariant \
           subscripts) live in scalar cells, with rotation at the latch \
           carrying cross-iteration reuse. The cells are singleton \
           resources, so the ordinary promotion machinery keeps them in \
           registers.")

let run_cmd =
  let doc = "interpret a MiniC program and print its output" in
  Cmd.v (Cmd.info "run" ~doc ~exits) Term.(const cmd_run $ file_arg $ fuel_arg)

let promote_cmd =
  let doc = "run the full register promotion pipeline and report counts" in
  let static_profile =
    Arg.(
      value & flag
      & info [ "static-profile" ]
          ~doc:"Use the static loop-depth frequency estimate instead of a profiling run.")
  in
  let no_store_removal =
    Arg.(
      value & flag
      & info [ "no-store-removal" ] ~doc:"Disable store removal (ablation).")
  in
  let singleton_deref =
    Arg.(
      value & flag
      & info [ "singleton-deref" ]
          ~doc:"Lower unambiguous pointer dereferences as singleton accesses.")
  in
  let engine =
    Arg.(
      value & opt string "cytron"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"IDF engine for the SSA updater: cytron or sreedhar-gao.")
  in
  let min_profit =
    Arg.(
      value & opt float 0.0
      & info [ "min-profit" ] ~docv:"X"
          ~doc:"Minimum profit (weighted operation count) to promote a web.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the versioned JSON report (counts, per-pass timings, \
             metrics) to $(docv); '-' for stdout, which then suppresses the \
             text table.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Collect per-pass spans and print the trace tree to stderr.")
  in
  let checkpoints =
    Arg.(
      value & flag
      & info [ "checkpoints" ]
          ~doc:
            "Debug mode: run the IR validator and SSA verifier after every \
             pipeline pass; checkpoint cost shows up in the trace.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~env:(Cmd.Env.info "RPROMOTE_JOBS")
          ~doc:
            "Compile $(docv) functions concurrently on OCaml domains. The \
             report is identical whatever $(docv) is; the interpreter runs \
             stay serial.")
  in
  let deterministic =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~env:(Cmd.Env.info "RPROMOTE_DETERMINISTIC")
          ~doc:
            "Zero every clock read so traces and JSON reports are \
             byte-identical across runs and $(b,--jobs) values (used by the \
             CI golden comparison).")
  in
  Cmd.v
    (Cmd.info "promote" ~doc ~exits)
    Term.(
      const cmd_promote $ file_arg $ fuel_arg $ profile_arg $ static_profile
      $ no_store_removal $ singleton_deref $ engine $ min_profit $ regs_arg
      $ spill_order_arg $ scalrep_arg $ json $ trace $ checkpoints $ jobs
      $ deterministic $ interp_arg)

let dump_cmd =
  let doc = "print the IR at a pipeline stage" in
  let stage =
    Arg.(
      value & opt string "promoted"
      & info [ "stage" ] ~docv:"STAGE"
          ~doc:"One of lowered, normalised, ssa, promoted.")
  in
  Cmd.v (Cmd.info "dump" ~doc ~exits)
    Term.(const cmd_dump $ file_arg $ stage $ scalrep_arg)

let baseline_cmd =
  let doc = "run the Lu-Cooper-style loop-based baseline instead" in
  Cmd.v (Cmd.info "baseline" ~doc ~exits) Term.(const cmd_baseline $ file_arg $ fuel_arg)

let workloads_cmd =
  let doc = "list the built-in benchmark workloads" in
  Cmd.v (Cmd.info "workloads" ~doc ~exits) Term.(const cmd_workloads $ const ())

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/rpromote.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "RPROMOTE_SOCKET")
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let doc = "run the compile daemon (Unix-domain socket, result cache)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Serves length-prefixed JSON compile requests over a Unix-domain \
         socket, caching finished reports under a digest of (source, \
         options, report schema). Responses under $(b,--deterministic) \
         requests are byte-identical to one-shot $(b,rpromote promote \
         --json -) runs. Stop it with SIGINT, SIGTERM or $(b,rpromote \
         client --shutdown).";
    ]
  in
  let jobs =
    Arg.(
      value & opt int Rp_serve.Mux.default_config.Rp_serve.Mux.jobs
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker-pool parallelism for compile requests.")
  in
  let max_inflight =
    Arg.(
      value
      & opt int Rp_serve.Mux.default_config.Rp_serve.Mux.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Shed compile requests (with a $(i,busy) error) beyond $(docv) \
             in flight.")
  in
  let deadline =
    Arg.(
      value
      & opt float Rp_serve.Mux.default_config.Rp_serve.Mux.deadline_s
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request compile deadline; an expired request is answered \
             with a $(i,timeout) error while the compile finishes into the \
             cache. 0 disables.")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MIB" ~doc:"Result cache budget in MiB.")
  in
  let cache_entries =
    Arg.(
      value
      & opt int Rp_serve.Mux.default_config.Rp_serve.Mux.cache_max_entries
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Result cache entry bound.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~env:(Cmd.Env.info "RPROMOTE_CACHE_DIR")
          ~doc:
            "Persistent result-cache directory (created if missing): \
             deterministic reports are written through to digest-keyed \
             files, so warm hits survive a daemon restart. Off by default \
             (pure in-memory cache). With $(b,--shards), each shard keeps \
             its own subdirectory.")
  in
  let store_mb =
    Arg.(
      value & opt int 256
      & info [ "store-mb" ] ~docv:"MIB"
          ~doc:"Persistent store budget in MiB (with $(b,--cache-dir)).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Fork $(docv) shard daemons and route each compile by its \
             content digest, so cache residency partitions cleanly. The \
             main socket becomes a router; shard $(i,i) listens on \
             $(i,SOCKET).shard$(i,i).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man ~exits)
    Term.(
      const cmd_serve $ socket_arg $ jobs $ max_inflight $ deadline $ cache_mb
      $ cache_entries $ cache_dir $ store_mb $ shards)

let client_cmd =
  let doc = "compile through a running daemon" in
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "MiniC source file, '-' for stdin, or a built-in workload name \
             (resolved by the daemon). Required unless $(b,--ping), \
             $(b,--stats) or $(b,--shutdown) is given.")
  in
  let op =
    let ping =
      Arg.(value & flag & info [ "ping" ] ~doc:"Only check the daemon is alive.")
    in
    let stats =
      Arg.(
        value & flag
        & info [ "stats" ]
            ~doc:"Print the daemon's stats report (JSON) and exit.")
    in
    let shutdown =
      Arg.(
        value & flag
        & info [ "shutdown" ] ~doc:"Ask the daemon to shut down gracefully.")
    in
    let combine ping stats shutdown =
      match (ping, stats, shutdown) with
      | true, false, false -> `Ping
      | false, true, false -> `Stats
      | false, false, true -> `Shutdown
      | false, false, false -> `Compile
      | _ -> `Conflict
    in
    Term.(const combine $ ping $ stats $ shutdown)
  in
  let static_profile =
    Arg.(
      value & flag
      & info [ "static-profile" ]
          ~doc:"Use the static loop-depth frequency estimate instead of a profiling run.")
  in
  let no_store_removal =
    Arg.(
      value & flag
      & info [ "no-store-removal" ] ~doc:"Disable store removal (ablation).")
  in
  let singleton_deref =
    Arg.(
      value & flag
      & info [ "singleton-deref" ]
          ~doc:"Lower unambiguous pointer dereferences as singleton accesses.")
  in
  let engine =
    Arg.(
      value & opt string "cytron"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"IDF engine for the SSA updater: cytron or sreedhar-gao.")
  in
  let min_profit =
    Arg.(
      value & opt float 0.0
      & info [ "min-profit" ] ~docv:"X"
          ~doc:"Minimum profit (weighted operation count) to promote a web.")
  in
  let json =
    Arg.(
      value & opt string "-"
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the daemon's JSON report to $(docv); '-' (default) for stdout.")
  in
  let deterministic =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~env:(Cmd.Env.info "RPROMOTE_DETERMINISTIC")
          ~doc:
            "Ask for a deterministic report: byte-identical to a one-shot \
             $(b,rpromote promote --deterministic --json -) run of the same \
             input and flags.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request deadline override; the daemon answers $(i,timeout) \
             if the compile is not done in time. Defaults to the daemon's \
             own deadline; 0 waits forever.")
  in
  Cmd.v
    (Cmd.info "client" ~doc ~exits)
    Term.(
      const cmd_client $ socket_arg $ file $ op $ fuel_arg $ profile_arg
      $ static_profile $ no_store_removal $ singleton_deref $ engine
      $ min_profit $ regs_arg $ spill_order_arg $ scalrep_arg $ json
      $ deterministic $ interp_arg $ deadline)

let main_cmd =
  let doc = "SSA-based scalar register promotion (Sastry & Ju, PLDI 1998)" in
  (* rpromote --list-workloads: registry discovery without picking a
     subcommand; bare `rpromote` still shows the help page *)
  let list_workloads =
    Arg.(
      value & flag
      & info [ "list-workloads" ]
          ~doc:
            "Print the built-in workload registry (names and one-line \
             descriptions) and exit.")
  in
  let default =
    Term.(
      ret
        (const (fun list ->
             if list then `Ok (cmd_workloads ()) else `Help (`Pager, None))
        $ list_workloads))
  in
  Cmd.group ~default (Cmd.info "rpromote" ~doc ~exits)
    [
      run_cmd;
      promote_cmd;
      baseline_cmd;
      dump_cmd;
      workloads_cmd;
      serve_cmd;
      client_cmd;
    ]

(* term_err 2: cmdliner's own flag-parsing failures land on the same
   usage-error exit code as [Usage_error] *)
let () = exit (Cmd.eval' ~term_err:2 main_cmd)
