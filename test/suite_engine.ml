(* Differential tests: the flat-decoded engine ([Decode] + [Engine])
   against the tree-walking oracle ([Interp]).  The contract under test
   is total observable equality — exit value, print trace, dynamic
   counters, block/edge/call frequencies, and the same trap (message
   and kind) at the same point — on random programs, on the seed
   workloads, and on the synthetic gen sweep, both before and after
   promotion.  The deterministic-report checks additionally pin the
   JSON bytes: a flat-engine pipeline run must be indistinguishable
   from a tree-engine one.

   [RPROMOTE_JOBS] (CI sets 1 and 4) feeds the pipeline's [jobs] so
   the byte-identity check also covers the parallel compile. *)

module I = Rp_interp.Interp
module D = Rp_interp.Decode
module E = Rp_interp.Engine
module RC = Rp_interp.Rcompile
module RE = Rp_interp.Rengine
module P = Rp_core.Pipeline
module R = Rp_workloads.Registry

let qtest = Suite_qcheck.qtest

let jobs_from_env =
  match Sys.getenv_opt "RPROMOTE_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

(* ------------------------------------------------------------------ *)
(* Run outcomes: a result flattened to comparable (sorted) lists, or
   the trap that ended the run. *)

type outcome = {
  o_exit : int;
  o_output : int list;
  o_counters : int * int * int * int * int;
  o_blocks : ((string * Rp_ir.Ids.bid) * int) list;
  o_edges : ((string * Rp_ir.Ids.bid * Rp_ir.Ids.bid) * int) list;
  o_calls : (string * int) list;
}

type run = Finished of outcome | Trap of string | Fuel of int

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let outcome (r : I.result) : outcome =
  let c = r.I.counters in
  {
    o_exit = r.I.exit_value;
    o_output = r.I.output;
    o_counters =
      (c.I.loads, c.I.stores, c.I.aliased_loads, c.I.aliased_stores, c.I.instrs);
    o_blocks = sorted_bindings r.I.block_counts;
    o_edges = sorted_bindings r.I.edge_counts;
    o_calls = sorted_bindings r.I.call_counts;
  }

let run_of f =
  match f () with
  | r -> Finished (outcome r)
  | exception I.Runtime_error m -> Trap m
  | exception I.Out_of_fuel budget -> Fuel budget

let run_tree ~fuel prog = run_of (fun () -> I.run ~fuel prog)
let run_flat ~fuel prog = run_of (fun () -> E.run ~fuel (D.decode prog))
let run_reg ~fuel prog = run_of (fun () -> RE.run ~fuel (RC.compile prog))

let describe = function
  | Finished o ->
      Printf.sprintf "exit %d, %d prints, instrs %d"
        o.o_exit (List.length o.o_output)
        (let _, _, _, _, i = o.o_counters in
         i)
  | Trap m -> "trap: " ^ m
  | Fuel b -> Printf.sprintf "out of fuel (budget %d)" b

(* where do two outcomes first disagree? *)
let diff_field a b =
  match (a, b) with
  | Finished x, Finished y ->
      if x.o_exit <> y.o_exit then "exit value"
      else if x.o_output <> y.o_output then "print trace"
      else if x.o_counters <> y.o_counters then "dynamic counters"
      else if x.o_blocks <> y.o_blocks then "block counts"
      else if x.o_edges <> y.o_edges then "edge counts"
      else if x.o_calls <> y.o_calls then "call counts"
      else "equal"
  | _ -> "run kind"

let check_same ctx tree flat =
  if tree <> flat then
    Alcotest.failf "%s: engine diverges from oracle on %s\n  tree: %s\n  flat: %s"
      ctx (diff_field tree flat) (describe tree) (describe flat)

(* the full two-deep oracle stack: flat vs tree, then reg vs tree *)
let check_same3 ctx tree flat reg =
  check_same (ctx ^ " [flat]") tree flat;
  if tree <> reg then
    Alcotest.failf "%s: reg engine diverges from oracle on %s\n  tree: %s\n  reg: %s"
      ctx (diff_field tree reg) (describe tree) (describe reg)

(* ------------------------------------------------------------------ *)
(* Random programs: engine vs oracle on the prepared (SSA) program and
   on the promoted one. *)

let prop_engine_matches_oracle =
  QCheck.Test.make ~name:"flat engine matches oracle (random programs)"
    ~count:250 Suite_qcheck.arb_program (fun src ->
      let fuel = 2_000_000 in
      let prog, _ = P.prepare src in
      let tree = run_tree ~fuel prog
      and flat = run_flat ~fuel prog
      and reg = run_reg ~fuel prog in
      if tree <> flat then
        QCheck.Test.fail_reportf "pre-promotion %s:@.tree %s@.flat %s"
          (diff_field tree flat) (describe tree) (describe flat)
      else if tree <> reg then
        QCheck.Test.fail_reportf "pre-promotion %s:@.tree %s@.reg %s"
          (diff_field tree reg) (describe tree) (describe reg)
      else
        (* the same comparison on the promoted program; the pipeline
           (tree engine, so this property never depends on the code
           under test) only finishes when the baseline run did *)
        match
          P.run
            ~options:{ Suite_qcheck.qcheck_options with P.interp = P.Tree }
            src
        with
        | report ->
            let p = report.P.prog in
            let tree = run_tree ~fuel p
            and flat = run_flat ~fuel p
            and reg = run_reg ~fuel p in
            if tree <> flat then
              QCheck.Test.fail_reportf "post-promotion %s:@.tree %s@.flat %s"
                (diff_field tree flat) (describe tree) (describe flat)
            else if tree <> reg then
              QCheck.Test.fail_reportf "post-promotion %s:@.tree %s@.reg %s"
                (diff_field tree reg) (describe tree) (describe reg)
            else true
        | exception (I.Runtime_error _ | I.Out_of_fuel _) -> true)

(* The whole pipeline, flat vs tree: profiles feed promotion, so equal
   reports here also prove the engine's profile drives the same
   promotion decisions. *)
let prop_pipeline_engines_agree =
  QCheck.Test.make ~name:"pipeline agrees under flat and tree engines"
    ~count:100 Suite_qcheck.arb_program (fun src ->
      let go interp =
        match
          P.run ~options:{ Suite_qcheck.qcheck_options with P.interp } src
        with
        | r -> Some r
        | exception (I.Runtime_error _ | I.Out_of_fuel _) -> None
      in
      let agree (a : P.report) (b : P.report) =
        a.P.behaviour_ok && b.P.behaviour_ok
        && outcome a.P.baseline = outcome b.P.baseline
        && outcome a.P.final = outcome b.P.final
        && a.P.static_after = b.P.static_after
        && a.P.per_function = b.P.per_function
      in
      match (go P.Tree, go P.Flat, go P.Reg) with
      | None, None, None -> true
      | Some a, Some b, Some c -> agree a b && agree a c
      | Some _, None, _ -> QCheck.Test.fail_report "flat trapped, tree finished"
      | Some _, _, None -> QCheck.Test.fail_report "reg trapped, tree finished"
      | None, _, _ -> QCheck.Test.fail_report "tree trapped, another finished")

(* ------------------------------------------------------------------ *)
(* Seed workloads and the gen sweep *)

let workload_fuel = 80_000_000

let differential_on_workload (w : R.workload) () =
  let prog, _ = P.prepare w.R.source in
  check_same3 (w.R.name ^ " pre-promotion")
    (run_tree ~fuel:workload_fuel prog)
    (run_flat ~fuel:workload_fuel prog)
    (run_reg ~fuel:workload_fuel prog);
  let report =
    P.run
      ~options:{ P.default_options with fuel = workload_fuel; interp = P.Tree }
      w.R.source
  in
  check_same3 (w.R.name ^ " post-promotion")
    (run_tree ~fuel:workload_fuel report.P.prog)
    (run_flat ~fuel:workload_fuel report.P.prog)
    (run_reg ~fuel:workload_fuel report.P.prog)

(* refresh must be equivalent to a from-scratch decode: decode before
   promotion, refresh after the IR was rewritten, compare against a
   fresh image of the final program *)
let test_refresh_matches_fresh_decode () =
  (* drive one program object through profile → promote → refresh by
     hand, so the decode image sees the same in-place IR rewrite the
     pipeline performs *)
  let w = Option.get (R.find "li") in
  let options = { P.default_options with fuel = workload_fuel } in
  let prog, trees = P.prepare ~options w.R.source in
  let dec = D.decode prog in
  let before_flat = run_of (fun () -> E.run ~fuel:workload_fuel dec) in
  let before_tree = run_tree ~fuel:workload_fuel prog in
  check_same "li pre-promotion (shared image)" before_tree before_flat;
  ignore (P.attach_profile ~options ~decoded:(P.Iflat dec) prog trees);
  List.iter
    (fun (f : Rp_ir.Func.t) ->
      match List.assoc_opt f.Rp_ir.Func.fname trees with
      | Some tree ->
          ignore
            (Rp_core.Promote.promote_function
               ~cfg:Rp_core.Promote.default_config f prog.Rp_ir.Func.vartab
               tree)
      | None -> ())
    prog.Rp_ir.Func.funcs;
  Rp_opt.Cleanup.run_prog prog;
  D.refresh dec;
  let refreshed = run_of (fun () -> E.run ~fuel:workload_fuel dec) in
  let fresh = run_flat ~fuel:workload_fuel prog in
  let tree = run_tree ~fuel:workload_fuel prog in
  check_same "li post-promotion refresh vs fresh decode" fresh refreshed;
  check_same "li post-promotion refresh vs oracle" tree refreshed

(* the same contract for the register backend: [Rcompile.refresh] after
   an in-place IR rewrite must match a from-scratch compile *)
let test_reg_refresh_matches_fresh_compile () =
  let w = Option.get (R.find "li") in
  let options = { P.default_options with fuel = workload_fuel } in
  let prog, trees = P.prepare ~options w.R.source in
  let cp = RC.compile prog in
  let before_reg = run_of (fun () -> RE.run ~fuel:workload_fuel cp) in
  let before_tree = run_tree ~fuel:workload_fuel prog in
  check_same "li pre-promotion (shared reg image)" before_tree before_reg;
  ignore (P.attach_profile ~options ~decoded:(P.Ireg cp) prog trees);
  List.iter
    (fun (f : Rp_ir.Func.t) ->
      match List.assoc_opt f.Rp_ir.Func.fname trees with
      | Some tree ->
          ignore
            (Rp_core.Promote.promote_function
               ~cfg:Rp_core.Promote.default_config f prog.Rp_ir.Func.vartab
               tree)
      | None -> ())
    prog.Rp_ir.Func.funcs;
  Rp_opt.Cleanup.run_prog prog;
  RC.refresh cp;
  let refreshed = run_of (fun () -> RE.run ~fuel:workload_fuel cp) in
  let fresh = run_reg ~fuel:workload_fuel prog in
  let tree = run_tree ~fuel:workload_fuel prog in
  check_same "li post-promotion reg refresh vs fresh compile" fresh refreshed;
  check_same "li post-promotion reg refresh vs oracle" tree refreshed

(* deterministic JSON reports must be byte-identical across engines *)
let report_bytes interp (w : R.workload) =
  let options =
    {
      P.default_options with
      fuel = workload_fuel;
      trace = true;
      jobs = jobs_from_env;
      interp;
    }
  in
  let _, s =
    P.run_fresh_json ~label:w.R.name ~deterministic:true ~options w.R.source
  in
  s

let byte_identity_on_workload (w : R.workload) () =
  let tree = report_bytes P.Tree w
  and flat = report_bytes P.Flat w
  and reg = report_bytes P.Reg w in
  Alcotest.(check string)
    (Printf.sprintf "%s: deterministic report bytes, tree vs flat (jobs=%d)"
       w.R.name jobs_from_env)
    tree flat;
  Alcotest.(check string)
    (Printf.sprintf "%s: deterministic report bytes, tree vs reg (jobs=%d)"
       w.R.name jobs_from_env)
    tree reg

(* ------------------------------------------------------------------ *)
(* Fuel exhaustion: both engines raise the distinct exception with the
   budget attached, at the same instruction count. *)

let test_fuel_exhaustion_parity () =
  let src = "int main() { while (1) { } return 0; }" in
  let prog, _ = P.prepare src in
  let budget = 10_000 in
  (match run_tree ~fuel:budget prog with
  | Fuel b -> Alcotest.(check int) "tree budget" budget b
  | o -> Alcotest.failf "tree: expected fuel exhaustion, got %s" (describe o));
  (match run_flat ~fuel:budget prog with
  | Fuel b -> Alcotest.(check int) "flat budget" budget b
  | o -> Alcotest.failf "flat: expected fuel exhaustion, got %s" (describe o));
  (match run_reg ~fuel:budget prog with
  | Fuel b -> Alcotest.(check int) "reg budget" budget b
  | o -> Alcotest.failf "reg: expected fuel exhaustion, got %s" (describe o));
  (* and through the full pipeline under the default (flat) engine *)
  (match P.run ~options:{ P.default_options with fuel = budget } src with
  | _ -> Alcotest.fail "pipeline: expected Out_of_fuel"
  | exception I.Out_of_fuel b -> Alcotest.(check int) "pipeline budget" budget b);
  (* and under the register backend *)
  match
    P.run
      ~options:{ P.default_options with fuel = budget; interp = P.Reg }
      src
  with
  | _ -> Alcotest.fail "reg pipeline: expected Out_of_fuel"
  | exception I.Out_of_fuel b ->
      Alcotest.(check int) "reg pipeline budget" budget b

let suite =
  let seed_cases name mk =
    List.map
      (fun (w : R.workload) ->
        Alcotest.test_case (name ^ " " ^ w.R.name) `Quick (mk w))
      R.all
  in
  let gen_cases name mk =
    List.map
      (fun n ->
        let w = R.generated n in
        Alcotest.test_case (name ^ " " ^ w.R.name) `Quick (mk w))
      [ 60; 240 ]
  in
  seed_cases "differential" differential_on_workload
  @ gen_cases "differential" differential_on_workload
  @ seed_cases "report bytes" byte_identity_on_workload
  @ gen_cases "report bytes" byte_identity_on_workload
  @ [
      Alcotest.test_case "refresh vs fresh decode" `Quick
        test_refresh_matches_fresh_decode;
      Alcotest.test_case "reg refresh vs fresh compile" `Quick
        test_reg_refresh_matches_fresh_compile;
      Alcotest.test_case "fuel exhaustion parity" `Quick
        test_fuel_exhaustion_parity;
      qtest prop_engine_matches_oracle;
      qtest prop_pipeline_engines_agree;
    ]
