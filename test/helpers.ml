(* Shared test utilities. *)

open Rp_ir

(* Build a function whose CFG has the given shape: [edges] over blocks
   0..n-1, block 0 is the entry.  Blocks with two successors branch on
   a dummy parameter register, with one successor they jump, with none
   they return.  Used by the CFG/dominator/interval tests that only
   care about shape. *)
let func_of_edges ~(n : int) (edges : (int * int) list) : Func.t =
  let f = Func.create_func ~name:"g" in
  let cond = Func.fresh_reg ~name:"c" f in
  f.params <- [ cond ];
  let blocks = Array.init n (fun _ -> Func.add_block f) in
  Array.iteri
    (fun i b ->
      let succs = List.filter_map (fun (s, d) -> if s = i then Some d else None) edges in
      match succs with
      | [] -> b.Block.term <- Block.Ret None
      | [ d ] -> b.Block.term <- Block.Jmp blocks.(d).Block.bid
      | [ t; fl ] ->
          b.Block.term <-
            Block.Br
              { cond = Instr.Reg cond; t = blocks.(t).Block.bid; f = blocks.(fl).Block.bid }
      | _ -> invalid_arg "func_of_edges: more than two successors")
    blocks;
  f.entry <- blocks.(0).Block.bid;
  Cfg.recompute_preds f;
  f

(* Compile a MiniC source and run it, returning the interpreter result. *)
let run_source ?(fuel = 10_000_000) (src : string) : Rp_interp.Interp.result =
  let prog = Rp_minic.Lower.compile src in
  Rp_interp.Interp.run ~fuel prog

(* Run the full pipeline on a source.  The optional arguments mirror
   the fields of [Pipeline.options] the suites actually vary. *)
let pipeline ?cfg ?profile (src : string) : Rp_core.Pipeline.report =
  let d = Rp_core.Pipeline.default_options in
  let options =
    {
      d with
      Rp_core.Pipeline.promote = Option.value cfg ~default:d.Rp_core.Pipeline.promote;
      profile = Option.value profile ~default:d.Rp_core.Pipeline.profile;
    }
  in
  Rp_core.Pipeline.run ~options src

let check_output msg expected (r : Rp_interp.Interp.result) =
  Alcotest.(check (list int)) msg expected r.Rp_interp.Interp.output

(* Assert that promotion preserved behaviour and return the report. *)
let check_pipeline ?cfg ?profile msg src =
  let report = pipeline ?cfg ?profile src in
  Alcotest.(check bool) (msg ^ ": behaviour preserved") true
    report.Rp_core.Pipeline.behaviour_ok;
  report

let dynamic_loads (c : Rp_interp.Interp.counters) = c.Rp_interp.Interp.loads

let dynamic_stores (c : Rp_interp.Interp.counters) = c.Rp_interp.Interp.stores
