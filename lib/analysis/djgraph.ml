(* Linear-time iterated-dominance-frontier computation on the DJ-graph,
   after Sreedhar and Gao, "A Linear Time Algorithm for Placing phi-nodes"
   (POPL 1995) — the algorithm the paper cites ([SrG95]) for efficient
   batch phi placement in the incremental SSA updater.

   The DJ-graph is the dominator tree (D-edges) plus the CFG edges that
   are not dominator-tree edges (J-edges).  IDF(S) is computed by
   processing requested nodes from the deepest dominator-tree level
   upward ("piggybank"), visiting each dominator subtree at most once,
   and adding the target z of a J-edge y->z whenever
   level(z) <= level(current root). *)

open Rp_ir

type t = {
  dom : Dom.t;
  level : int array;  (** dominator tree depth per block *)
  jedges : (Ids.bid * Ids.bid list) array;  (** J-edge successors per block *)
  max_level : int;
}

let build (f : Func.t) (dom : Dom.t) : t =
  let n = Func.num_blocks f in
  let level = Array.make n 0 in
  let rec set_levels b d =
    level.(b) <- d;
    List.iter (fun c -> set_levels c (d + 1)) (Dom.children dom b)
  in
  set_levels (Dom.entry dom) 0;
  let jedges = Array.make n (0, []) in
  Func.iter_blocks
    (fun b ->
      let js =
        List.filter
          (fun s ->
            (* a CFG edge b->s is a J-edge iff b is not the idom of s;
               the entry has no tree parent, so every edge into it
               (a back edge of a loop containing the entry) is a
               J-edge *)
            match Dom.idom dom s with
            | Some i -> i <> b.Block.bid
            | None -> true)
          (Block.succs b)
      in
      jedges.(b.bid) <- (b.bid, js))
    f;
  let max_level = Array.fold_left max 0 level in
  { dom; level; jedges; max_level }

(* Iterated dominance frontier of [init]. *)
let idf (t : t) (init : Bitset.t) : Bitset.t =
  let n = Array.length t.level in
  let in_idf = Array.make n false in
  let visited = Array.make n false in
  let in_bank = Array.make n false in
  (* piggybank: one bucket of nodes per dominator-tree level *)
  let bank = Array.make (t.max_level + 1) [] in
  let insert b =
    if not in_bank.(b) then begin
      in_bank.(b) <- true;
      bank.(t.level.(b)) <- b :: bank.(t.level.(b))
    end
  in
  Bitset.iter insert init;
  let current_level = ref t.max_level in
  let current_root_level = ref 0 in
  let rec visit y =
    if not visited.(y) then begin
      visited.(y) <- true;
      let _, js = t.jedges.(y) in
      List.iter
        (fun z ->
          if t.level.(z) <= !current_root_level && not in_idf.(z) then begin
            in_idf.(z) <- true;
            insert z
          end)
        js;
      (* only descend into dominator-tree children deeper than the root *)
      List.iter
        (fun c -> if t.level.(c) > !current_root_level then visit c)
        (Dom.children t.dom y)
    end
  in
  while !current_level >= 0 do
    match bank.(!current_level) with
    | [] -> decr current_level
    | x :: rest ->
        bank.(!current_level) <- rest;
        current_root_level := t.level.(x);
        visit x
  done;
  let result = Bitset.create n in
  Array.iteri (fun b v -> if v then Bitset.add result b) in_idf;
  result
