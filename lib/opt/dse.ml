(* Dead store elimination on memory SSA form — cited by the paper
   ([CFR+91]) as another optimization that falls out of having memory
   resources under SSA.

   A store whose resource has no uses is unobservable, because in this
   IR every observation of memory is an explicit use: singleton loads,
   aliased loads (calls, pointer loads), and the [Exit_use] at each
   return which stands for the caller's view of the globals.  Removing
   a dead store can make a memory phi dead, which can make further
   stores dead, so the sweep cascades (the same argument as step 4 of
   the incremental SSA updater, applied to every variable at once). *)

open Rp_ir
open Rp_ssa

let run (f : Func.t) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let index = Ssa_index.build f in
    Func.iter_blocks
      (fun b ->
        (* removing the current instruction during iteration is safe:
           Iseq iteration captures the next node before the callback *)
        Block.iter_instrs
          (fun (i : Instr.t) ->
            match i.op with
            | Instr.Store { dst; _ } | Instr.Mphi { dst; _ } ->
                if not (Ssa_index.has_uses index dst) then begin
                  Block.remove_instr b ~iid:i.iid;
                  incr removed;
                  changed := true
                end
            | _ -> ())
          b)
      f
  done;
  !removed

let run_prog (p : Func.prog) : int =
  List.fold_left (fun acc f -> acc + run f) 0 p.Func.funcs
