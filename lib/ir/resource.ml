(* Memory variables and memory resources (paper section 3).

   A {e memory variable} ([var]) is a named memory location known to the
   compiler: a global scalar, an address-exposed local scalar, a scalar
   field of a global struct, or a non-promotable aggregate (array, heap).
   Variables live in a program-wide table and are identified by [vid].

   A {e singleton memory resource} ([t]) is an SSA name for a memory
   variable: the pair of the base variable and an SSA version. Version 0
   means "not yet renamed" (pre-SSA IR uses version 0 everywhere); SSA
   construction assigns versions starting from 1.

   Aggregate resources from the paper are represented as the [mdefs] /
   [muses] singleton-resource lists carried by aliased instructions
   (calls, pointer loads/stores, array accesses): an aggregate is exactly
   the set of singletons it may touch, so we store the set inline. *)

type var_kind =
  | Global  (** file-scope scalar variable *)
  | Addr_local of string  (** address-exposed local scalar; owner function *)
  | Struct_field of string * string
      (** scalar field of a global struct: (struct var name, field name) *)
  | Array of int  (** aggregate array variable of given length; never promoted *)
  | Heap  (** the anonymous heap; never promoted *)
  | Elem of string
      (** scalar-replacement cell carved out of an array element by the
          scalrep pass; owner function. Behaves like an address-exposed
          local scalar and is promotable. *)

type var = {
  vid : Ids.vid;
  vname : string;
  vkind : var_kind;
  vinit : int;  (** initial value for scalars; 0 for aggregates *)
}

(* A singleton memory resource: base variable + SSA version. *)
type t = { base : Ids.vid; ver : int }

let compare (a : t) (b : t) =
  let c = Int.compare a.base b.base in
  if c <> 0 then c else Int.compare a.ver b.ver

let equal a b = compare a b = 0

let unversioned base = { base; ver = 0 }

(* Is this variable a candidate for scalar register promotion?  The paper
   promotes global scalars, address-exposed local scalars, and scalar
   components of structure variables. *)
let promotable_kind = function
  | Global | Addr_local _ | Struct_field _ | Elem _ -> true
  | Array _ | Heap -> false

module ResMap = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module ResSet = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

(* Program-wide variable table. *)
type table = { vars : var Vec.t }

let dummy_var = { vid = -1; vname = "?"; vkind = Heap; vinit = 0 }

let create_table () = { vars = Vec.create ~dummy:dummy_var }

let add_var table ~name ~kind ~init =
  let vid = Vec.length table.vars in
  let v = { vid; vname = name; vkind = kind; vinit = init } in
  Vec.push table.vars v;
  vid

let var table vid = Vec.get table.vars vid

let var_name table vid = (var table vid).vname

let num_vars table = Vec.length table.vars

let iter_vars f table = Vec.iter f table.vars

let promotable table vid = promotable_kind (var table vid).vkind

let pp_var table fmt vid = Format.pp_print_string fmt (var_name table vid)

let pp table fmt (r : t) =
  if r.ver = 0 then Format.fprintf fmt "%s" (var_name table r.base)
  else Format.fprintf fmt "%s_%d" (var_name table r.base) r.ver

(* Resource printer that does not need the table; used in error paths. *)
let pp_raw fmt (r : t) = Format.fprintf fmt "v%d_%d" r.base r.ver
