(* "li" — a tiny lisp-machine-style evaluator echoing SPECInt95's li.

   Cons cells live in global arrays managed through a global free list
   (li's famously hot "freelist" scalar); evaluation is recursive, and
   allocation touches the free-list head on every cons.  Garbage
   collection is the rare cold call, checked once per round.  Table 2
   shape: a solid dynamic load reduction (16.5%) with store reduction
   too. *)

let name = "li"

let description =
  "lisp-style recursive evaluator; global free list head hot on every \
   allocation, GC is the cold call"

let source =
  {|
// li: cons-cell evaluator with a global free list.
int car[2048];
int cdr[2048];
int freelist = 0;
int free_count = 0;
int allocs = 0;
int gcs = 0;
int evals = 0;
int depth_max = 0;

void init_heap() {
  int i;
  for (i = 0; i < 2048; i++) {
    car[i] = 0;
    cdr[i] = i + 1;        // free list threading
  }
  cdr[2047] = 0 - 1;       // end marker
  freelist = 0;
  free_count = 2048;
}

void collect() {
  // fake gc: rethread everything; rare and expensive
  gcs++;
  init_heap();
}

// intern: a called slow path taken for some symbols
int intern(int a) {
  allocs++;
  return a % 17;
}

// build a list of n numbers; allocation is inlined so the free-list
// head and counters are hot in this loop.  The symbol-table call sits
// on a cold path AFTER the stores — the paper's Figure 7 pattern — so
// the promoter can push the compensation stores into the cold block.
int build(int n) {
  int lst = 0 - 1;
  int i;
  for (i = 0; i < n; i++) {
    int a = i * 3 % 17;
    int cell = freelist;          // hot global traffic
    freelist = cdr[cell];
    car[cell] = a;
    cdr[cell] = lst;
    lst = cell;
    if (a % 11 == 0) {
      intern(a);                  // cold call after the hot stores
    }
  }
  free_count = free_count - n;
  allocs = allocs + n;
  return lst;
}

// recursive walks over a list, tracking recursion depth; per-call
// global traffic that intraprocedural promotion cannot touch
int sum_list(int lst, int depth) {
  evals++;
  if (depth > depth_max) { depth_max = depth; }
  if (lst < 0) { return 0; }
  return car[lst] + sum_list(cdr[lst], depth + 1);
}

int max_list(int lst, int depth) {
  evals++;
  if (depth > depth_max) { depth_max = depth; }
  if (lst < 0) { return 0 - 1000; }
  int rest = max_list(cdr[lst], depth + 1);
  if (car[lst] > rest) { return car[lst]; }
  return rest;
}

int count_list(int lst, int depth) {
  evals++;
  if (depth > depth_max) { depth_max = depth; }
  if (lst < 0) { return 0; }
  return 1 + count_list(cdr[lst], depth + 1);
}

int main() {
  int total = 0;
  int round;
  init_heap();
  for (round = 0; round < 60; round++) {
    // cold path: reclaim between rounds when the heap runs low
    if (free_count < 100) {
      collect();
    }
    int lst = build(40 + round % 13);
    total = total + sum_list(lst, 0);
    total = (total + max_list(lst, 0)) % 1000000;
    total = total + count_list(lst, 0);
  }
  print(total);
  print(allocs);
  print(gcs);
  print(evals);
  print(depth_max);
  print(free_count);
  return 0;
}
|}
