(** The register promotion algorithm (paper section 4): bottom-up over
    the interval tree, one SSA web at a time, profile-driven, with
    partial promotion around aliased references and the incremental SSA
    updater repairing memory SSA form after stores are cloned. *)

open Rp_ir
open Rp_analysis
open Rp_ssa

type config = {
  engine : Incremental.engine;  (** IDF engine for the SSA updater *)
  allow_store_removal : bool;  (** master switch, for the ablation *)
  min_profit : float;  (** promote when profit ≥ this; the paper uses 0 *)
  insert_dummies : bool;
      (** leave dummy aliased loads for the parent interval; off for
          the loop-based baseline *)
}

val default_config : config

type stats = {
  mutable webs_seen : int;
  mutable webs_promoted : int;
  mutable webs_promoted_no_defs : int;
  mutable webs_store_removal : int;
  mutable webs_skipped_profit : int;
  mutable webs_skipped_malformed : int;
  mutable loads_replaced : int;
  mutable loads_inserted : int;
  mutable stores_inserted : int;
  mutable stores_deleted : int;
  mutable dummies_added : int;
  mutable reg_phis_added : int;
}

val empty_stats : unit -> stats

(** Pure field-by-field sum; neither argument is mutated. *)
val add : stats -> stats -> stats

(** Field/value pairs in declaration order, for the metrics exporter
    and the JSON report. *)
val to_alist : stats -> (string * int) list

(** Fold the second stats record into the first — a thin mutable
    wrapper over {!add}. *)
val accumulate : stats -> stats -> unit

(** {2 The section 4.3 sets, exposed for tests and inspection} *)

module PointSet : Set.S with type elt = Resource.t * Ids.bid

(** loads_added: for each pair (x, l), a load of x goes at the end of
    block l — the phi leaves not defined by a store of the web. *)
val loads_added : Web_info.t -> PointSet.t

(** The phi targets an aliased load transitively depends on. *)
val dependent_phis : Web_info.t -> Resource.ResSet.t

(** stores_added after the dominance pruning: insert a store of the
    resource before each point. *)
val stores_added :
  Func.t -> Dom.t -> Web_info.t -> (Resource.t * Web_info.point) list

exception Promotion_bug of string
(** An internal invariant of the transformation failed. *)

(** Promote one web; exposed for the loop-based baseline, which drives
    it with its own legality filter. *)
val promote_in_web :
  config ->
  Func.t ->
  Dom.t ->
  Intervals.t ->
  stats ->
  Resource.ResSet.t ->
  unit

(** promoteInInterval (paper Figure 2) for one interval whose children
    were already processed. *)
val promote_in_interval :
  config -> Func.t -> Resource.table -> stats -> Intervals.t -> unit

(** Promote a whole function. Expects it normalised (no critical edges,
    dedicated preheaders/tails), in SSA form, carrying a profile. *)
val promote_function :
  ?cfg:config -> Func.t -> Resource.table -> Intervals.tree -> stats
