let () =
  Alcotest.run "regpromo"
    [
      ("vec", Suite_vec.suite);
      ("ir", Suite_ir.suite);
      ("analysis", Suite_analysis.suite);
      ("ssa", Suite_ssa.suite);
      ("incremental", Suite_incremental.suite);
      ("minic", Suite_minic.suite);
      ("interp", Suite_interp.suite);
      ("interp2", Suite_interp2.suite);
      ("engine", Suite_engine.suite);
      ("opt", Suite_opt.suite);
      ("opt2", Suite_opt2.suite);
      ("promote", Suite_promote.suite);
      ("web_info", Suite_web_info.suite);
      ("regalloc", Suite_regalloc.suite);
      ("pressure", Suite_pressure.suite);
      ("codecs", Suite_codecs.suite);
      ("baseline", Suite_baseline.suite);
      ("workloads", Suite_workloads.suite);
      ("obs", Suite_obs.suite);
      ("more", Suite_more.suite);
      ("properties", Suite_qcheck.suite);
      ("par", Suite_par.suite);
      ("serve", Suite_serve.suite);
      ("scalrep", Suite_scalrep.suite);
      ("serve_e2e", Suite_serve_e2e.suite);
    ]
