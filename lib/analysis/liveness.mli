(** Register liveness by backward dataflow, with the standard SSA phi
    treatment: a phi target is defined at the top of its block, a phi
    source is a use at the end of the corresponding predecessor. *)

open Rp_ir

type t

val compute : Func.t -> t

val live_in : t -> Ids.bid -> Ids.IntSet.t

val live_out : t -> Ids.bid -> Ids.IntSet.t

(** {2 Helpers exposed for the interference builder} *)

val block_defs : Block.t -> Ids.IntSet.t

val upward_exposed : Block.t -> Ids.IntSet.t

val phi_defs : Block.t -> Ids.IntSet.t

val phi_uses_from : Block.t -> pred:Ids.bid -> Ids.IntSet.t
