(* Register interference graph.

   Built from liveness: two registers interfere when one is defined at
   a point where the other is live (the classic Chaitin condition).
   Copies get the usual slack: the source of a copy does not interfere
   with its target just because of the copy itself.

   The graph is a packed bitset matrix: row [r] holds one bit per
   potential neighbour, so edge insertion and membership are O(1) and
   iterating a row costs [nregs/63] words plus one count-trailing-zeros
   per neighbour.  Register counts per function are small (hundreds),
   so the n^2-bit matrix is a few KB and the whole build is dominated
   by the liveness walk — the list-of-sets representation this
   replaces spent more time allocating than computing.

   On SSA form the graph is chordal, which {!Color} exploits: the
   number of colors a simplicial elimination scheme needs equals the
   chromatic number, and both equal the maximum number of
   simultaneously live registers.  This is the "number of colors needed
   to color the register interference graph" that the paper's Table 3
   reports. *)

open Rp_ir
open Rp_analysis

(* 63 usable bits per OCaml int *)
let bits = 63

type t = {
  nregs : int;
  words : int;  (** words per row *)
  m : int array;  (** row-major adjacency bitmap, [nregs * words] *)
}

let create (nregs : int) : t =
  let words = (max nregs 1 + bits - 1) / bits in
  { nregs; words; m = Array.make (max nregs 1 * words) 0 }

let add_edge t a b =
  if a <> b then begin
    t.m.((a * t.words) + (b / bits)) <-
      t.m.((a * t.words) + (b / bits)) lor (1 lsl (b mod bits));
    t.m.((b * t.words) + (a / bits)) <-
      t.m.((b * t.words) + (a / bits)) lor (1 lsl (a mod bits))
  end

let interfere t a b =
  a <> b
  && a < t.nregs && b < t.nregs
  && t.m.((a * t.words) + (b / bits)) land (1 lsl (b mod bits)) <> 0

(* trailing zeros of a non-zero word *)
let ntz v =
  let n = ref 0 and v = ref v in
  if !v land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    v := !v lsr 32
  end;
  if !v land 0xFFFF = 0 then begin
    n := !n + 16;
    v := !v lsr 16
  end;
  if !v land 0xFF = 0 then begin
    n := !n + 8;
    v := !v lsr 8
  end;
  if !v land 0xF = 0 then begin
    n := !n + 4;
    v := !v lsr 4
  end;
  if !v land 0x3 = 0 then begin
    n := !n + 2;
    v := !v lsr 2
  end;
  if !v land 0x1 = 0 then incr n;
  !n

(* Iterate the neighbours of [r] in increasing order. *)
let iter_adj t r f =
  let base = r * t.words in
  for wi = 0 to t.words - 1 do
    let x = ref t.m.(base + wi) in
    let b0 = wi * bits in
    while !x <> 0 do
      let low = !x land - !x in
      f (b0 + ntz low);
      x := !x lxor low
    done
  done

(* Remove every edge incident to [r]: clear bit [r] in each
   neighbour's row, then zero [r]'s own row.  Used by the promoter's
   spill-order mode to retract a tentative node. *)
let clear_node t r =
  let base = r * t.words in
  let rw = r / bits and rb = 1 lsl (r mod bits) in
  for wi = 0 to t.words - 1 do
    let x = ref t.m.(base + wi) in
    let b0 = wi * bits in
    while !x <> 0 do
      let low = !x land - !x in
      let b = b0 + ntz low in
      t.m.((b * t.words) + rw) <- t.m.((b * t.words) + rw) land lnot rb;
      x := !x lxor low
    done;
    t.m.(base + wi) <- 0
  done

let degree t r =
  let base = r * t.words in
  let d = ref 0 in
  for wi = 0 to t.words - 1 do
    let x = ref t.m.(base + wi) in
    while !x <> 0 do
      incr d;
      x := !x land (!x - 1)
    done
  done;
  !d

let num_nodes t = t.nregs

(* Registers that actually occur in the function (not every id below
   next_reg is in use after renaming). *)
let occurring (f : Func.t) : Ids.IntSet.t =
  let s = ref Ids.IntSet.empty in
  let touch r = s := Ids.IntSet.add r !s in
  List.iter touch f.Func.params;
  Func.iter_blocks
    (fun b ->
      Block.iter_instrs
        (fun i ->
          (match Instr.reg_def i.op with Some r -> touch r | None -> ());
          List.iter touch (Instr.reg_uses i.op);
          List.iter (fun (_, r) -> touch r) (Instr.rphi_srcs i.op))
        b;
      List.iter touch (Block.term_uses b))
    f;
  !s

let build ?(copy_slack = true) (f : Func.t) : t =
  let live = Liveness.compute f in
  let n = f.Func.next_reg in
  let t = create n in
  let add_edge a b = add_edge t a b in
  Func.iter_blocks
    (fun b ->
      (* walk the block backwards keeping the live set; registers read
         by the terminator are live between the last instruction and
         the branch *)
      let live_now = Bitset.copy (Liveness.live_out live b.bid) in
      List.iter (Bitset.add live_now) (Block.term_uses b);
      let step (i : Instr.t) =
        (match Instr.reg_def i.op with
        | Some d ->
            (* copy slack: the source of a copy does not interfere with
               its target just because of the copy; hide it while
               drawing the edges.  Disabled for the slack-free chordal
               graph whose chromatic number is exactly MAXLIVE. *)
            let hidden =
              match i.op with
              | Instr.Copy { src = Instr.Reg s; _ }
                when copy_slack && Bitset.mem live_now s ->
                  Bitset.remove live_now s;
                  Some s
              | _ -> None
            in
            Bitset.iter (fun l -> add_edge d l) live_now;
            (match hidden with Some s -> Bitset.add live_now s | None -> ());
            Bitset.remove live_now d
        | None -> ());
        List.iter (Bitset.add live_now) (Instr.reg_uses i.op)
      in
      Iseq.iter_rev step b.body;
      (* phi defs: all defined in parallel at block entry; they
         interfere with each other and with everything live there *)
      let phi_ds =
        Iseq.fold_left
          (fun acc (i : Instr.t) ->
            match Instr.reg_def i.op with Some d -> d :: acc | None -> acc)
          [] b.phis
      in
      List.iter
        (fun d ->
          Bitset.iter (fun l -> add_edge d l) live_now;
          List.iter (fun d' -> add_edge d d') phi_ds)
        phi_ds)
    f;
  (* parameters: all defined in parallel at function entry, before the
     entry block runs — each interferes with everything live into the
     entry block (which includes every other live param) *)
  let entry_live = Liveness.live_in live f.Func.entry in
  List.iter
    (fun p -> Bitset.iter (fun l -> add_edge p l) entry_live)
    f.Func.params;
  t

(* Maximum number of simultaneously live registers anywhere in the
   function — the lower bound any allocation needs, and on SSA form the
   exact chromatic number.  The walk itself lives in {!Pressure}, which
   also serves the promoter's per-interval budget checks. *)
let max_live (f : Func.t) : int = Pressure.maxlive (Pressure.compute f)
