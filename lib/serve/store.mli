(** Persistent content-addressed cache tier: one file per report under
    a cache directory, layered beneath the in-memory {!Cache} LRU so
    warm hits survive daemon restarts.

    Layout: a value for key [k] (a hex digest from {!Cache.key}) lives
    at [<dir>/<k>.rpc].  Writes land in a unique [<k>.tmp.<pid>.<n>]
    first and are renamed into place — rename is atomic on POSIX, so a
    crash mid-write never leaves a torn value under a live name.
    {!open_dir} sweeps leftover temporaries (counted in [swept]),
    rebuilds the index from surviving files, and seeds the recency
    order from file mtimes, oldest first.

    Byte accounting charges value bytes plus filename (key) bytes plus
    a fixed per-file overhead estimate, mirroring the in-memory
    cache's honesty rule; exceeding [max_bytes] unlinks
    least-recently-used files.  A single mutex guards every operation;
    file reads and writes happen under it (values are single reports,
    so the critical sections stay short). *)

type t

(** Create or reopen a store rooted at [dir] (created, with parents,
    if missing).  Default [max_bytes]: 256 MiB. *)
val open_dir : ?max_bytes:int -> string -> t

val dir : t -> string

(** Lookup; a hit reads the file and refreshes recency.  A file that
    vanished or tore underneath the index is dropped and counted in
    [errors] (the lookup then misses). *)
val find : t -> string -> string option

(** Write-through insert.  Same key implies same content (the key is a
    digest of the inputs), so re-adding only refreshes recency.  Keys
    must be lowercase hex; anything else is ignored, as is a value
    whose cost exceeds the whole budget. *)
val add : t -> key:string -> string -> unit

(** Most- to least-recently-used, i.e. reverse eviction order. *)
val keys_mru : t -> string list

type stats = {
  entries : int;
  bytes : int;  (** accounted, including key and overhead charges *)
  max_bytes : int;
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  errors : int;  (** vanished/torn files dropped, failed writes *)
  swept : int;  (** stale temporaries removed at {!open_dir} *)
}

val stats : t -> stats
val stats_json : t -> Rp_obs.Json.t
