(** Per-web reference sets (paper section 4.2): for one SSA web inside
    one interval, the load/store/aliased references, the resources
    defined in the interval split by defining-instruction kind, the phi
    structure, and the unique live-in resource. *)

open Rp_ir
open Rp_analysis

(** An insertion point: the end of a block (before its branch), or
    immediately before a given instruction. *)
type point = At_block_end of Ids.bid | Before_instr of Ids.bid * Instr.t

val point_bid : point -> Ids.bid

type ref_site = { instr : Instr.t; bid : Ids.bid }

type t = {
  base : Ids.vid;
  resources : Resource.ResSet.t;
  loads : (ref_site * Resource.t) list;  (** singleton loads of the web *)
  stores : (ref_site * Resource.t) list;  (** singleton stores of the web *)
  aliased_uses : (ref_site * Resource.t) list;
      (** aliased loads (calls, pointer loads, dummies, exit uses)
          using a web resource *)
  phis : (ref_site * Resource.t) list;  (** memory phis of the web *)
  def_res : Resource.ResSet.t;  (** resources defined in the interval *)
  store_res : Resource.ResSet.t;  (** subset defined by singleton stores *)
  phi_res : Resource.ResSet.t;  (** subset defined by interval phis *)
  live_in : Resource.t option;  (** unique resource defined outside *)
  multiple_live_in : bool;  (** malformed web: promotion is skipped *)
}

(** Scan the interval's blocks and build the sets for the web holding
    the given resources.
    @raise Invalid_argument on an empty web. *)
val compute : Func.t -> Intervals.t -> Resource.ResSet.t -> t

(** Build the sets for every web of the interval in one scan —
    occurrence dispatch instead of a scan per web.  Results line up
    with the input list.
    @raise Invalid_argument if any web is empty. *)
val compute_all : Func.t -> Intervals.t -> Resource.ResSet.t list -> t list

val has_defs : t -> bool

val store_defined : t -> Resource.t -> bool

val phi_defined : t -> Resource.t -> bool

(** A leaf operand: not defined by a phi instruction of this interval. *)
val is_leaf : t -> Resource.t -> bool
