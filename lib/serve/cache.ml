(* Bounded LRU keyed by content digest: a hash table from key to an
   intrusive doubly-linked node, with the list kept in recency order
   (head = most recent).  Every operation is O(1); eviction pops the
   tail until the byte and entry bounds hold.

   An optional persistent Store tier sits underneath: memory misses
   fall through to the store, store hits are promoted back into the
   memory LRU, and inserts write through so warm entries survive a
   restart.  Without a store the behaviour is exactly the historical
   in-memory cache. *)

module J = Rp_obs.Json

type node = {
  nkey : string;
  mutable value : string;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type t = {
  m : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* MRU *)
  mutable tail : node option;  (* LRU, evicted first *)
  mutable bytes : int;
  mutable entries : int;
  max_bytes : int;
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  store : Store.t option;
  mutable store_hits : int;
}

(* hashtable + list-node bookkeeping, amortised per entry *)
let overhead = 64

let cost ~key ~value = String.length key + String.length value + overhead

let create ?(max_bytes = 64 * 1024 * 1024) ?(max_entries = 4096) ?store () =
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    entries = 0;
    max_bytes = max max_bytes 0;
    max_entries = max max_entries 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    store;
    store_hits = 0;
  }

let store c = c.store

let locked c f =
  Mutex.lock c.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.m) f

let key ~source ~options_fp ~label ~deterministic =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            "rp-serve-cache";
            string_of_int Rp_obs.Report.schema_version;
            label;
            (if deterministic then "det" else "wall");
            options_fp;
            source;
          ]))

(* ---- intrusive list primitives (call with the lock held) ---- *)

let unlink c n =
  (match n.prev with Some p -> p.next <- n.next | None -> c.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.prev <- None;
  n.next <- c.head;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let drop c n =
  unlink c n;
  Hashtbl.remove c.tbl n.nkey;
  c.bytes <- c.bytes - cost ~key:n.nkey ~value:n.value;
  c.entries <- c.entries - 1

let evict_to_bounds c =
  while
    (c.bytes > c.max_bytes || c.entries > c.max_entries)
    && c.tail <> None
  do
    (match c.tail with
    | Some n ->
        drop c n;
        c.evictions <- c.evictions + 1
    | None -> ())
  done

(* ---- public operations ---- *)

(* insert without counting a miss/hit: promotion of a store hit into
   the memory tier (call with the lock held) *)
let insert c k value =
  if cost ~key:k ~value <= c.max_bytes && c.max_entries > 0 then begin
    (match Hashtbl.find_opt c.tbl k with Some old -> drop c old | None -> ());
    let n = { nkey = k; value; prev = None; next = None } in
    Hashtbl.replace c.tbl k n;
    push_front c n;
    c.bytes <- c.bytes + cost ~key:k ~value;
    c.entries <- c.entries + 1;
    evict_to_bounds c
  end

let find c k =
  locked c @@ fun () ->
  match Hashtbl.find_opt c.tbl k with
  | Some n ->
      c.hits <- c.hits + 1;
      unlink c n;
      push_front c n;
      Some n.value
  | None -> (
      match c.store with
      | None ->
          c.misses <- c.misses + 1;
          None
      | Some st -> (
          match Store.find st k with
          | Some value ->
              (* persistent hit: promote into the memory LRU so the
                 next lookup is pure memory *)
              c.store_hits <- c.store_hits + 1;
              insert c k value;
              Some value
          | None ->
              c.misses <- c.misses + 1;
              None))

let add c ~key:k value =
  locked c @@ fun () ->
  (* an entry no budget can hold is not cached (and cannot be allowed
     to flush the whole cache on the way through) *)
  insert c k value;
  (* write through: the store applies its own budget rule *)
  match c.store with None -> () | Some st -> Store.add st ~key:k value

let clear c =
  locked c @@ fun () ->
  Hashtbl.reset c.tbl;
  c.head <- None;
  c.tail <- None;
  c.bytes <- 0;
  c.entries <- 0

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
  max_bytes : int;
  max_entries : int;
  store_hits : int;
}

let stats c =
  locked c @@ fun () ->
  {
    hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    entries = c.entries;
    bytes = c.bytes;
    max_bytes = c.max_bytes;
    max_entries = c.max_entries;
    store_hits = c.store_hits;
  }

let keys_mru c =
  locked c @@ fun () ->
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.nkey :: acc) n.next
  in
  walk [] c.head

let publish_metrics c =
  let s = stats c in
  Rp_obs.Metrics.set_gauge "cache.hits" (float_of_int s.hits);
  Rp_obs.Metrics.set_gauge "cache.misses" (float_of_int s.misses);
  Rp_obs.Metrics.set_gauge "cache.evictions" (float_of_int s.evictions);
  Rp_obs.Metrics.set_gauge "cache.bytes" (float_of_int s.bytes)

let stats_json c =
  let s = stats c in
  let lookups = s.hits + s.store_hits + s.misses in
  J.Obj
    ([
       ("hits", J.Int s.hits);
       ("misses", J.Int s.misses);
       ("evictions", J.Int s.evictions);
       ("entries", J.Int s.entries);
       ("bytes", J.Int s.bytes);
       ("max_bytes", J.Int s.max_bytes);
       ("max_entries", J.Int s.max_entries);
       ("store_hits", J.Int s.store_hits);
       ( "hit_ratio",
         if lookups = 0 then J.Null
         else
           J.Float
             (float_of_int (s.hits + s.store_hits) /. float_of_int lookups) );
     ]
    @ match c.store with
      | None -> []
      | Some st -> [ ("store", Store.stats_json st) ])
