(* Per-web reference sets (paper section 4.2).

   For one SSA web inside one interval, collect the sets the promotion
   algorithm works from: the load/store references, the aliased
   references, the resources defined in the interval (split by defining
   instruction kind), the phi structure, and the unique live-in
   resource. *)

open Rp_ir
open Rp_analysis

type point = At_block_end of Ids.bid | Before_instr of Ids.bid * Instr.t

let point_bid = function At_block_end b -> b | Before_instr (b, _) -> b

type ref_site = { instr : Instr.t; bid : Ids.bid }

type t = {
  base : Ids.vid;
  resources : Resource.ResSet.t;
  loads : (ref_site * Resource.t) list;  (** singleton loads of the web *)
  stores : (ref_site * Resource.t) list;  (** singleton stores of the web *)
  aliased_uses : (ref_site * Resource.t) list;
      (** aliased loads (calls, pointer loads, dummies, exit uses) using
          a web resource *)
  phis : (ref_site * Resource.t) list;  (** memory phis of the web *)
  def_res : Resource.ResSet.t;  (** resources defined in the interval *)
  store_res : Resource.ResSet.t;  (** subset defined by singleton stores *)
  phi_res : Resource.ResSet.t;  (** subset defined by interval phis *)
  live_in : Resource.t option;  (** unique resource defined outside *)
  multiple_live_in : bool;  (** malformed web: promotion is skipped *)
}

(* Scan the interval blocks and build the reference sets for the web
   holding [resources]. *)
let compute (f : Func.t) (iv : Intervals.t) (resources : Resource.ResSet.t) :
    t =
  let base =
    match Resource.ResSet.choose_opt resources with
    | Some r -> r.Resource.base
    | None -> invalid_arg "Web_info.compute: empty web"
  in
  let in_web r = Resource.ResSet.mem r resources in
  let loads = ref [] in
  let stores = ref [] in
  let aliased = ref [] in
  let phis = ref [] in
  let def_res = ref Resource.ResSet.empty in
  let store_res = ref Resource.ResSet.empty in
  let phi_res = ref Resource.ResSet.empty in
  let used = ref Resource.ResSet.empty in
  Ids.IntSet.iter
    (fun bid ->
      let b = Func.block f bid in
      Block.iter_instrs
        (fun (i : Instr.t) ->
          let site = { instr = i; bid } in
          (match i.op with
          | Instr.Load { src; _ } when in_web src ->
              loads := (site, src) :: !loads;
              used := Resource.ResSet.add src !used
          | Instr.Store { dst; _ } when in_web dst ->
              stores := (site, dst) :: !stores;
              def_res := Resource.ResSet.add dst !def_res;
              store_res := Resource.ResSet.add dst !store_res
          | Instr.Mphi { dst; srcs } when in_web dst ->
              phis := (site, dst) :: !phis;
              def_res := Resource.ResSet.add dst !def_res;
              phi_res := Resource.ResSet.add dst !phi_res;
              List.iter
                (fun (_, r) ->
                  if in_web r then used := Resource.ResSet.add r !used)
                srcs
          | _ -> ());
          (* aliased defs (calls, pointer stores) and aliased uses *)
          if Instr.is_aliased_store i.op then
            List.iter
              (fun r ->
                if in_web r then def_res := Resource.ResSet.add r !def_res)
              (Instr.mem_defs i.op);
          if Instr.is_aliased_load i.op then
            List.iter
              (fun r ->
                if in_web r then begin
                  aliased := (site, r) :: !aliased;
                  used := Resource.ResSet.add r !used
                end)
              (Instr.mem_uses i.op))
        b)
    iv.Intervals.blocks;
  let outside = Resource.ResSet.diff !used !def_res in
  let live_in = Resource.ResSet.choose_opt outside in
  {
    base;
    resources;
    loads = !loads;
    stores = !stores;
    aliased_uses = !aliased;
    phis = !phis;
    def_res = !def_res;
    store_res = !store_res;
    phi_res = !phi_res;
    live_in;
    multiple_live_in = Resource.ResSet.cardinal outside > 1;
  }

let has_defs w = not (Resource.ResSet.is_empty w.def_res)

let store_defined w r = Resource.ResSet.mem r w.store_res

let phi_defined w r = Resource.ResSet.mem r w.phi_res

(* A leaf operand: not defined by a phi instruction of this interval. *)
let is_leaf w r = not (phi_defined w r)
