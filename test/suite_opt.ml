(* Tests for DCE and copy propagation. *)

open Rp_ir
open Rp_analysis
open Rp_ssa

let prep src =
  let prog = Rp_minic.Lower.compile src in
  List.iter (fun f -> ignore (Intervals.normalise f)) prog.Func.funcs;
  List.iter Construct.run prog.Func.funcs;
  prog

let count pred prog =
  List.fold_left
    (fun acc (f : Func.t) ->
      Func.fold_blocks
        (fun acc b ->
          List.fold_left
            (fun acc (i : Instr.t) -> if pred i.Instr.op then acc + 1 else acc)
            acc
            (Block.instrs b))
        acc f)
    0 prog.Func.funcs

let is_load = function Instr.Load _ -> true | _ -> false

let is_copy = function Instr.Copy _ -> true | _ -> false

let test_dce_removes_dead_load () =
  let prog = prep "int g = 1; int main() { int dead = g; return 0; }" in
  Alcotest.(check int) "load present" 1 (count is_load prog);
  Rp_opt.Cleanup.run_prog prog;
  Alcotest.(check int) "dead load gone" 0 (count is_load prog);
  List.iter (Verify.assert_ok prog.Func.vartab) prog.Func.funcs

let test_dce_keeps_stores_and_calls () =
  let prog =
    prep
      {|
int g = 1;
void touch() { g = 2; }
int main() { touch(); return 0; }
|}
  in
  let stores_before = count (function Instr.Store _ -> true | _ -> false) prog in
  let calls_before = count (function Instr.Call _ -> true | _ -> false) prog in
  Rp_opt.Cleanup.run_prog prog;
  Alcotest.(check int) "stores kept"
    stores_before
    (count (function Instr.Store _ -> true | _ -> false) prog);
  Alcotest.(check int) "calls kept" calls_before
    (count (function Instr.Call _ -> true | _ -> false) prog)

let test_copyprop_chains () =
  (* build t0 = 5; t1 = t0; t2 = t1; print t2 *)
  let prog = Func.create_prog () in
  let f = Func.create_func ~name:"main" in
  Func.add_func prog f;
  let b = Func.add_block f in
  f.Func.entry <- b.Block.bid;
  Block.insert_at_end b (Func.mk_instr f (Instr.Copy { dst = 0; src = Imm 5 }));
  Block.insert_at_end b (Func.mk_instr f (Instr.Copy { dst = 1; src = Reg 0 }));
  Block.insert_at_end b (Func.mk_instr f (Instr.Copy { dst = 2; src = Reg 1 }));
  Block.insert_at_end b (Func.mk_instr f (Instr.Print { src = Reg 2 }));
  b.Block.term <- Block.Ret None;
  f.Func.next_reg <- 3;
  Cfg.recompute_preds f;
  Rp_opt.Cleanup.run f;
  (* everything should fold to print 5 *)
  Alcotest.(check int) "copies swept" 0 (count is_copy prog);
  match Iseq.to_list b.Block.body with
  | [ { Instr.op = Instr.Print { src = Imm 5 }; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single print of the constant"

let test_copyprop_through_phi_sources () =
  let prog =
    prep
      {|
int g = 0;
int main() {
  int x = 1;
  int i;
  for (i = 0; i < 3; i++) { g = g + x; }
  return g;
}
|}
  in
  Rp_opt.Cleanup.run_prog prog;
  List.iter (Verify.assert_ok prog.Func.vartab) prog.Func.funcs;
  let before = Rp_interp.Interp.run prog in
  Alcotest.(check int) "behaviour after cleanup" 3 before.Rp_interp.Interp.exit_value

let test_cleanup_preserves_behaviour () =
  List.iter
    (fun (w : Rp_workloads.Registry.workload) ->
      let prog = prep w.Rp_workloads.Registry.source in
      let before = Rp_interp.Interp.run ~fuel:20_000_000 prog in
      Rp_opt.Cleanup.run_prog prog;
      let after = Rp_interp.Interp.run ~fuel:20_000_000 prog in
      Alcotest.(check bool)
        (w.Rp_workloads.Registry.name ^ ": cleanup preserves behaviour")
        true
        (Rp_interp.Interp.same_behaviour before after))
    [ List.hd Rp_workloads.Registry.all ]

let suite =
  [
    Alcotest.test_case "dce removes dead load" `Quick test_dce_removes_dead_load;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_stores_and_calls;
    Alcotest.test_case "copyprop chains" `Quick test_copyprop_chains;
    Alcotest.test_case "copyprop + phis" `Quick test_copyprop_through_phi_sources;
    Alcotest.test_case "cleanup preserves workload behaviour" `Quick
      test_cleanup_preserves_behaviour;
  ]
