(** Functions and whole programs.

    A function owns its blocks (indexed densely by [bid]), fresh-id
    counters for registers, instructions and memory-resource versions,
    and an execution profile (block and edge frequencies). The program
    owns the memory-variable table, shared across functions. *)

(** Per-function analysis results cached on the function itself; the
    analyses extend this type with their own constructors (e.g. the
    dominator tree in [Rp_analysis.Dom]), so the IR layer needs no
    dependency on them. *)
type cache_entry = ..

type t = {
  fname : string;
  mutable params : Ids.reg list;
  blocks : Block.t Vec.t;
  iindex : Iseq.index;
      (** shared iid→node index over every block's phi and body
          sequences; makes {!find_instr} O(1) *)
  mutable entry : Ids.bid;
  mutable next_reg : int;
  mutable next_iid : int;
  reg_names : (Ids.reg, string) Hashtbl.t;
      (** optional name hints for readable dumps *)
  mver : (Ids.vid, int) Hashtbl.t;
      (** highest SSA version handed out per memory variable *)
  mutable freq : (Ids.bid, float) Hashtbl.t;  (** block execution frequency *)
  efreq : (Ids.bid * Ids.bid, float) Hashtbl.t;  (** edge frequency *)
  mutable cfg_gen : int;
      (** CFG generation stamp: bumped by {!add_block},
          {!touch_cfg} and the CFG-rewriting passes *)
  mutable analysis_cache : (int * cache_entry) option;
      (** one cached analysis result with the [cfg_gen] it was
          computed at; stale entries are simply overwritten *)
}

type prog = { mutable funcs : t list; vartab : Resource.table }

val dummy_block : Block.t

val create_func : name:string -> t

val create_prog : unit -> prog

val add_func : prog -> t -> unit

val find_func : prog -> string -> t option

(** Deep copy for destructive backend lowering: preserved block /
    instruction / register ids, fresh instruction cells and sequence
    index, copied profile.  The clone shares nothing mutable with the
    original. *)
val clone : t -> t

(** {2 Fresh ids} *)

val fresh_reg : ?name:string -> t -> Ids.reg

(** [reg_name f r] is the dump name, e.g. ["x.12"] or ["t12"]. *)
val reg_name : t -> Ids.reg -> string

val fresh_iid : t -> Ids.iid

val mk_instr : t -> Instr.opcode -> Instr.t

(** Fresh SSA version for a memory variable (starting from 1). *)
val fresh_ver : t -> Ids.vid -> Resource.t

(** {2 Blocks} *)

(** Bump the CFG generation stamp, invalidating cached analyses. Call
    after mutating the CFG shape in a way the helpers here cannot see —
    retargeting a terminator, marking blocks dead. {!add_block} calls
    it automatically. *)
val touch_cfg : t -> unit

val add_block : t -> Block.t

(** @raise Invalid_argument when the id is out of range. *)
val block : t -> Ids.bid -> Block.t

val num_blocks : t -> int

(** Iterate over live (non-dead) blocks. *)
val iter_blocks : (Block.t -> unit) -> t -> unit

val fold_blocks : ('a -> Block.t -> 'a) -> 'a -> t -> 'a

val live_blocks : t -> Block.t list

val iter_instrs : (Block.t -> Instr.t -> unit) -> t -> unit

(** O(1) through the shared instruction index; [None] for iids in dead
    blocks. *)
val find_instr : t -> iid:Ids.iid -> (Block.t * Instr.t) option

(** {2 Profile accessors} *)

val block_freq : t -> Ids.bid -> float

val set_block_freq : t -> Ids.bid -> float -> unit

val edge_freq : t -> src:Ids.bid -> dst:Ids.bid -> float

val set_edge_freq : t -> src:Ids.bid -> dst:Ids.bid -> float -> unit
