(* Memory SSA web construction (paper section 4.2, Figure 3).

   A web inside an interval is an equivalence class of singleton memory
   resources under the relation "x and y are operands/target of the
   same phi instruction located in the interval", closed transitively.
   The union-find formulation is exactly the paper's.

   Resources that appear in the interval but touch no phi form
   singleton webs — e.g. the distinct names "x1, x2, x3" created by two
   consecutive calls in straight-line code each promote independently,
   which is the finer granularity the paper advertises. *)

open Rp_ir

(* All webs of the blocks in [blocks].  Each web is the list of its
   member resources.  Only resources of promotable variables are
   considered; arrays and heap names never form webs. *)
let in_blocks (tab : Resource.table) (f : Func.t) (blocks : Ids.IntSet.t) :
    Resource.t list list =
  let uf : Resource.t Union_find.t = Union_find.create () in
  let touch (r : Resource.t) =
    if Resource.promotable tab r.base then Union_find.add uf r
  in
  Ids.IntSet.iter
    (fun bid ->
      let b = Func.block f bid in
      Block.iter_instrs
        (fun (i : Instr.t) ->
          List.iter touch (Instr.mem_defs i.op);
          List.iter touch (Instr.mem_uses i.op);
          match i.op with
          | Mphi { dst; srcs } ->
              if Resource.promotable tab dst.Resource.base then begin
                Union_find.add uf dst;
                List.iter
                  (fun (_, s) ->
                    Union_find.add uf s;
                    Union_find.union uf dst s)
                  srcs
              end
          | _ -> ())
        b)
    blocks;
  Union_find.classes uf
