(* Tests for dominators, dominance frontiers, the DJ-graph IDF, SCCs,
   interval trees and liveness. *)

open Rp_ir
open Rp_analysis

let iset = Ids.IntSet.of_list

let check_iset msg expected actual =
  Alcotest.(check (list int)) msg (List.sort compare expected)
    (Ids.IntSet.elements actual)

let bset = Bitset.of_list

let check_bset msg expected actual =
  Alcotest.(check (list int)) msg (List.sort compare expected)
    (Bitset.elements actual)

(* ------------------------------------------------------------------ *)
(* Dominators *)

let diamond () = Helpers.func_of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_dom_diamond () =
  let f = diamond () in
  let d = Dom.compute f in
  Alcotest.(check (option int)) "idom 1" (Some 0) (Dom.idom d 1);
  Alcotest.(check (option int)) "idom 2" (Some 0) (Dom.idom d 2);
  Alcotest.(check (option int)) "idom 3" (Some 0) (Dom.idom d 3);
  Alcotest.(check (option int)) "idom entry" None (Dom.idom d 0);
  Alcotest.(check bool) "0 dom 3" true (Dom.dominates d ~a:0 ~b:3);
  Alcotest.(check bool) "1 !dom 3" false (Dom.dominates d ~a:1 ~b:3);
  Alcotest.(check bool) "reflexive" true (Dom.dominates d ~a:2 ~b:2);
  Alcotest.(check bool) "strict excludes self" false
    (Dom.strictly_dominates d ~a:2 ~b:2)

let test_dom_loop () =
  (* 0 -> 1 -> 2 -> 1, 1 -> 3 *)
  let f = Helpers.func_of_edges ~n:4 [ (0, 1); (1, 2); (2, 1); (1, 3) ] in
  let d = Dom.compute f in
  Alcotest.(check (option int)) "idom 2" (Some 1) (Dom.idom d 2);
  Alcotest.(check (option int)) "idom 3" (Some 1) (Dom.idom d 3);
  Alcotest.(check int) "depth of 2" 2 (Dom.depth d 2);
  Alcotest.(check int) "lcd(2,3)" 1 (Dom.least_common_dominator d [ 2; 3 ]);
  Alcotest.(check int) "lcd singleton" 2 (Dom.least_common_dominator d [ 2 ])

let test_dom_unreachable () =
  let f = Helpers.func_of_edges ~n:3 [ (0, 1) ] in
  let d = Dom.compute f in
  Alcotest.(check bool) "unreachable" false (Dom.reachable d 2);
  Alcotest.(check bool) "reachable" true (Dom.reachable d 1)

let test_dom_path () =
  let f = Helpers.func_of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let d = Dom.compute f in
  let visited = ref [] in
  Dom.iter_dom_path d 3 ~f:(fun b -> visited := b :: !visited);
  Alcotest.(check (list int)) "path bottom-up" [ 0; 1; 2; 3 ] !visited

(* ------------------------------------------------------------------ *)
(* Dominance frontiers *)

let test_df_diamond () =
  let f = diamond () in
  let d = Dom.compute f in
  let df = Domfront.compute f d in
  check_bset "df 1" [ 3 ] (Domfront.frontier df 1);
  check_bset "df 2" [ 3 ] (Domfront.frontier df 2);
  check_bset "df 0" [] (Domfront.frontier df 0);
  check_bset "df 3" [] (Domfront.frontier df 3)

let test_df_loop () =
  let f = Helpers.func_of_edges ~n:4 [ (0, 1); (1, 2); (2, 1); (1, 3) ] in
  let d = Dom.compute f in
  let df = Domfront.compute f d in
  (* the loop body's frontier is the header *)
  check_bset "df 2" [ 1 ] (Domfront.frontier df 2);
  (* header's frontier contains itself (back edge) *)
  check_bset "df 1" [ 1 ] (Domfront.frontier df 1)

let test_idf_iterated () =
  (* two chained diamonds; 3 dominates the second one *)
  let f =
    Helpers.func_of_edges ~n:7
      [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6) ]
  in
  let d = Dom.compute f in
  let df = Domfront.compute f d in
  check_bset "idf of {1}" [ 3 ] (Domfront.iterated df (bset [ 1 ]));
  check_bset "idf of {4}" [ 6 ] (Domfront.iterated df (bset [ 4 ]));
  check_bset "idf of {1,4}" [ 3; 6 ] (Domfront.iterated df (bset [ 1; 4 ]));
  (* the iteration matters in a loop: a def in the body forces a phi at
     the header, whose own frontier includes the header again *)
  let f2 = Helpers.func_of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 1); (1, 4) ] in
  let d2 = Dom.compute f2 in
  let df2 = Domfront.compute f2 d2 in
  check_bset "idf of body def" [ 1 ] (Domfront.iterated df2 (bset [ 2 ]))

(* The Sreedhar–Gao DJ-graph IDF must agree with Cytron's on every
   graph; spot-check here, property-tested over random CFGs in
   suite_qcheck. *)
let test_djgraph_matches_cytron () =
  let graphs =
    [
      (4, [ (0, 1); (0, 2); (1, 3); (2, 3) ]);
      (4, [ (0, 1); (1, 2); (2, 1); (1, 3) ]);
      (7, [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6) ]);
      (6, [ (0, 1); (1, 2); (2, 3); (3, 1); (1, 4); (4, 5); (5, 4); (4, 0) ]);
    ]
  in
  List.iter
    (fun (n, edges) ->
      let f = Helpers.func_of_edges ~n edges in
      let d = Dom.compute f in
      let df = Domfront.compute f d in
      let dj = Djgraph.build f d in
      for v = 0 to n - 1 do
        if Dom.reachable d v then begin
          let a = Domfront.iterated df (bset [ v ]) in
          let b = Djgraph.idf dj (bset [ v ]) in
          Alcotest.(check (list int))
            (Printf.sprintf "idf {%d} on %d-node graph" v n)
            (Bitset.elements a) (Bitset.elements b)
        end
      done)
    graphs

(* ------------------------------------------------------------------ *)
(* SCC *)

let test_scc_basic () =
  let succs_of edges v = List.filter_map (fun (s, d) -> if s = v then Some d else None) edges in
  let edges = [ (0, 1); (1, 2); (2, 1); (1, 3); (3, 3) ] in
  let comps =
    Scc.compute ~nodes:(iset [ 0; 1; 2; 3 ]) ~succs:(succs_of edges)
  in
  let nontrivial =
    List.filter Scc.non_trivial comps
    |> List.map (fun (c : Scc.component) -> Ids.IntSet.elements c.nodes)
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "two sccs" [ [ 1; 2 ]; [ 3 ] ] nontrivial;
  (* self loop detection *)
  let self =
    List.find
      (fun (c : Scc.component) -> Ids.IntSet.mem 3 c.Scc.nodes)
      comps
  in
  Alcotest.(check bool) "self loop" true self.Scc.has_self_loop

let test_scc_restricted () =
  (* restricting the node set hides part of the cycle *)
  let succs v = List.filter_map (fun (s, d) -> if s = v then Some d else None)
      [ (0, 1); (1, 2); (2, 0) ]
  in
  let comps = Scc.compute ~nodes:(iset [ 0; 1 ]) ~succs in
  Alcotest.(check int) "no nontrivial scc" 0
    (List.length (List.filter Scc.non_trivial comps))

(* ------------------------------------------------------------------ *)
(* Intervals *)

let test_intervals_nested () =
  (* outer loop 1..4 with inner loop 2..3:
     0 -> 1 -> 2 -> 3 -> 2, 3 -> 4 -> 1, 4 -> 5 *)
  let f =
    Helpers.func_of_edges ~n:6
      [ (0, 1); (1, 2); (2, 3); (3, 2); (3, 4); (4, 1); (4, 5) ]
  in
  let tree = Intervals.normalise f in
  Alcotest.(check bool) "root is root" true tree.Intervals.root.Intervals.is_root;
  (* one outer interval with one child *)
  let outer =
    List.filter
      (fun (iv : Intervals.t) -> not iv.Intervals.is_root)
      tree.Intervals.root.Intervals.children
  in
  Alcotest.(check int) "one outer interval" 1 (List.length outer);
  let outer = List.hd tree.Intervals.root.Intervals.children in
  Alcotest.(check int) "outer has one child" 1 (List.length outer.Intervals.children);
  let inner = List.hd outer.Intervals.children in
  Alcotest.(check bool) "inner nested in outer" true
    (Ids.IntSet.subset inner.Intervals.blocks outer.Intervals.blocks);
  Alcotest.(check int) "inner depth" 2 inner.Intervals.depth;
  (* bottom-up order: children before parents, root last *)
  let order = List.map (fun (iv : Intervals.t) -> iv.Intervals.id) tree.Intervals.all in
  Alcotest.(check int) "root last" tree.Intervals.root.Intervals.id
    (List.nth order (List.length order - 1))

let test_intervals_normalised_invariants () =
  let graphs =
    [
      (6, [ (0, 1); (1, 2); (2, 3); (3, 2); (3, 4); (4, 1); (4, 5) ]);
      (4, [ (0, 1); (1, 2); (2, 1); (1, 3) ]);
      (5, [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 1); (3, 4) ]);
      (* irreducible: two entries into the cycle {2,3} *)
      (5, [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 2); (3, 4) ]);
    ]
  in
  List.iter
    (fun (n, edges) ->
      let f = Helpers.func_of_edges ~n edges in
      let tree = Intervals.normalise f in
      (* no critical edges anywhere *)
      List.iter
        (fun (s, d) ->
          Alcotest.(check bool)
            (Printf.sprintf "%d->%d not critical" s d)
            false (Cfg.is_critical f ~src:s ~dst:d))
        (Cfg.edges f);
      (* entry block is dedicated *)
      let e = Func.block f f.Func.entry in
      Alcotest.(check bool) "entry has no preds" true (e.Block.preds = []);
      Alcotest.(check bool) "entry body empty" true (Iseq.is_empty e.Block.body);
      List.iter
        (fun (iv : Intervals.t) ->
          if not iv.Intervals.is_root then begin
            (* preheader lies outside the interval *)
            Alcotest.(check bool) "preheader outside" false
              (Ids.IntSet.mem iv.Intervals.preheader iv.Intervals.blocks);
            (* every exit tail is dedicated: single pred *)
            List.iter
              (fun (src, dst) ->
                Alcotest.(check (list int))
                  (Printf.sprintf "tail b%d dedicated" dst)
                  [ src ]
                  (Func.block f dst).Block.preds)
              iv.Intervals.exit_edges;
            (* proper intervals have a dedicated preheader *)
            if iv.Intervals.proper then begin
              let h = Ids.IntSet.min_elt iv.Intervals.entries in
              Alcotest.(check (list int)) "preheader single succ" [ h ]
                (Block.succs (Func.block f iv.Intervals.preheader))
            end
          end)
        tree.Intervals.all)
    graphs

let test_improper_interval () =
  (* cycle {2,3} entered at both 2 and 3 *)
  let f =
    Helpers.func_of_edges ~n:5
      [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 2); (3, 4) ]
  in
  let tree = Intervals.normalise f in
  let ivs =
    List.filter (fun (iv : Intervals.t) -> not iv.Intervals.is_root) tree.Intervals.all
  in
  Alcotest.(check int) "one interval" 1 (List.length ivs);
  let iv = List.hd ivs in
  Alcotest.(check bool) "improper" false iv.Intervals.proper;
  Alcotest.(check int) "two entries" 2 (Ids.IntSet.cardinal iv.Intervals.entries);
  (* preheader = least common dominator of the entries, outside *)
  Alcotest.(check bool) "preheader outside" false
    (Ids.IntSet.mem iv.Intervals.preheader iv.Intervals.blocks);
  let d = Dom.compute f in
  Ids.IntSet.iter
    (fun e ->
      Alcotest.(check bool) "preheader dominates entries" true
        (Dom.dominates d ~a:iv.Intervals.preheader ~b:e))
    iv.Intervals.entries

let test_loop_depth () =
  let f =
    Helpers.func_of_edges ~n:6
      [ (0, 1); (1, 2); (2, 3); (3, 2); (3, 4); (4, 1); (4, 5) ]
  in
  let tree = Intervals.normalise f in
  Alcotest.(check int) "outside depth 0" 0 (Intervals.loop_depth tree f.Func.entry);
  Alcotest.(check int) "inner depth 2" 2 (Intervals.loop_depth tree 2);
  Alcotest.(check int) "outer depth 1" 1 (Intervals.loop_depth tree 1)

(* ------------------------------------------------------------------ *)
(* Liveness *)

let test_liveness_straightline () =
  let f = Func.create_func ~name:"t" in
  let b0 = Func.add_block f in
  let b1 = Func.add_block f in
  f.Func.entry <- b0.Block.bid;
  b0.Block.term <- Block.Jmp b1.Block.bid;
  (* b0: t0 = 1; t1 = t0 + 2   b1: ret t1 *)
  Block.insert_at_end b0 (Func.mk_instr f (Instr.Copy { dst = 0; src = Imm 1 }));
  Block.insert_at_end b0
    (Func.mk_instr f (Instr.Bin { dst = 1; op = Instr.Add; l = Reg 0; r = Imm 2 }));
  b1.Block.term <- Block.Ret (Some (Reg 1));
  Cfg.recompute_preds f;
  let lv = Liveness.compute f in
  Alcotest.(check (list int)) "live out of b0" [ 1 ]
    (Bitset.elements (Liveness.live_out lv b0.Block.bid));
  Alcotest.(check (list int)) "live in of b1" [ 1 ]
    (Bitset.elements (Liveness.live_in lv b1.Block.bid));
  Alcotest.(check (list int)) "live in of b0" []
    (Bitset.elements (Liveness.live_in lv b0.Block.bid))

let test_liveness_phi () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 with a phi at 3 merging r1/r2 *)
  let f = Helpers.func_of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let b1 = Func.block f 1 and b2 = Func.block f 2 and b3 = Func.block f 3 in
  Block.insert_at_end b1 (Func.mk_instr f (Instr.Copy { dst = 1; src = Imm 1 }));
  Block.insert_at_end b2 (Func.mk_instr f (Instr.Copy { dst = 2; src = Imm 2 }));
  Block.add_phi b3 (Func.mk_instr f (Instr.Rphi { dst = 3; srcs = [ (1, 1); (2, 2) ] }));
  b3.Block.term <- Block.Ret (Some (Reg 3));
  Cfg.recompute_preds f;
  let lv = Liveness.compute f in
  Alcotest.(check (list int)) "phi source live out of pred 1" [ 1 ]
    (Bitset.elements (Liveness.live_out lv 1));
  Alcotest.(check (list int)) "phi source live out of pred 2" [ 2 ]
    (Bitset.elements (Liveness.live_out lv 2));
  Alcotest.(check bool) "phi srcs not live into 3" true
    (not (Bitset.mem (Liveness.live_in lv 3) 1));
  Alcotest.(check bool) "phi target live in 3" true
    (Bitset.mem (Liveness.live_in lv 3) 3)

(* ------------------------------------------------------------------ *)
(* Static frequency estimation *)

let test_freq_estimate () =
  let f =
    Helpers.func_of_edges ~n:6
      [ (0, 1); (1, 2); (2, 3); (3, 2); (3, 4); (4, 1); (4, 5) ]
  in
  let tree = Intervals.normalise f in
  Freq.estimate f tree;
  Alcotest.(check (float 0.001)) "entry freq 1" 1.0
    (Func.block_freq f f.Func.entry);
  Alcotest.(check (float 0.001)) "inner loop freq 100" 100.0
    (Func.block_freq f 2);
  Alcotest.(check bool) "has profile" true (Freq.has_profile f)

let suite =
  [
    Alcotest.test_case "dom diamond" `Quick test_dom_diamond;
    Alcotest.test_case "dom loop + lcd" `Quick test_dom_loop;
    Alcotest.test_case "dom unreachable" `Quick test_dom_unreachable;
    Alcotest.test_case "dom path" `Quick test_dom_path;
    Alcotest.test_case "df diamond" `Quick test_df_diamond;
    Alcotest.test_case "df loop" `Quick test_df_loop;
    Alcotest.test_case "iterated df" `Quick test_idf_iterated;
    Alcotest.test_case "djgraph = cytron" `Quick test_djgraph_matches_cytron;
    Alcotest.test_case "scc basic" `Quick test_scc_basic;
    Alcotest.test_case "scc restricted" `Quick test_scc_restricted;
    Alcotest.test_case "intervals nested" `Quick test_intervals_nested;
    Alcotest.test_case "normalise invariants" `Quick test_intervals_normalised_invariants;
    Alcotest.test_case "improper interval" `Quick test_improper_interval;
    Alcotest.test_case "loop depth" `Quick test_loop_depth;
    Alcotest.test_case "liveness straight line" `Quick test_liveness_straightline;
    Alcotest.test_case "liveness phi" `Quick test_liveness_phi;
    Alcotest.test_case "freq estimate" `Quick test_freq_estimate;
  ]
