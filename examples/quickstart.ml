(* Quickstart: the paper's Figure 1 example, end to end.

   A global x is incremented 100 times in a hot loop, then a function
   that may touch x is called 10 times.  Register promotion keeps x in
   a virtual register through the first loop — the 200 memory
   operations collapse to a preheader load and a tail store — while the
   second loop is left alone because every iteration calls foo().

   Run with:  dune exec examples/quickstart.exe *)

module P = Rp_core.Pipeline
module I = Rp_interp.Interp

let source =
  {|
int x = 0;

void foo() {
  x = x + 2;
}

int main() {
  int i;
  for (i = 0; i < 100; i++) {
    x++;                      // hot: promoted to a register
  }
  for (i = 0; i < 10; i++) {
    foo();                    // aliased: x must live in memory here
  }
  print(x);
  return 0;
}
|}

let () =
  print_endline "=== paper Figure 1: the running example ===";
  print_endline source;
  (* one options record instead of per-call knobs; [trace = true]
     collects a span per pipeline pass *)
  let options = { P.default_options with trace = true } in
  let report = P.run ~options source in
  let b = report.P.dynamic_before and a = report.P.dynamic_after in
  Printf.printf "program output        : %s (must be 120)\n"
    (String.concat ", " (List.map string_of_int report.P.final.I.output));
  Printf.printf "behaviour preserved   : %b\n" report.P.behaviour_ok;
  Printf.printf "dynamic loads         : %d -> %d\n" b.I.loads a.I.loads;
  Printf.printf "dynamic stores        : %d -> %d\n" b.I.stores a.I.stores;
  Printf.printf "static loads          : %d -> %d\n"
    report.P.static_before.Rp_core.Stats.loads
    report.P.static_after.Rp_core.Stats.loads;
  Printf.printf "static stores         : %d -> %d\n"
    report.P.static_before.Rp_core.Stats.stores
    report.P.static_after.Rp_core.Stats.stores;
  let s = report.P.promote_stats in
  Printf.printf "webs promoted         : %d of %d\n"
    s.Rp_core.Promote.webs_promoted s.Rp_core.Promote.webs_seen;
  print_endline "\n=== main() after promotion ===";
  let main =
    List.find
      (fun f -> f.Rp_ir.Func.fname = "main")
      report.P.prog.Rp_ir.Func.funcs
  in
  print_string (Rp_ir.Pp.func_to_string report.P.prog.Rp_ir.Func.vartab main);
  print_endline "\n=== where the time went (Rp_obs trace) ===";
  Format.printf "%a@?" Rp_obs.Trace.pp_spans (Rp_obs.Trace.spans ())
