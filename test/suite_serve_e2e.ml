(* End-to-end tests of the compile daemon over the loopback transport:
   the full server surface — concurrent clients, cache rounds,
   byte-identity with direct pipeline runs, poisoned requests,
   malformed frames, shedding, deadlines, shutdown — without a
   socket. *)

module Proto = Rp_serve.Protocol
module Server = Rp_serve.Server
module Client = Rp_serve.Client
module Cache = Rp_serve.Cache
module P = Rp_core.Pipeline
module J = Rp_obs.Json
module R = Rp_workloads.Registry

let options = { P.default_options with trace = true }

let request (w : R.workload) =
  { Proto.target = `Workload w.R.name; options; deterministic = true; deadline_s = None }

let with_server ?config f =
  let srv = Server.create ?config () in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_client srv f =
  let c = Client.of_conn (Server.loopback srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let response_label = function
  | Proto.Report { cached; _ } ->
      if cached then "Report(cached)" else "Report(fresh)"
  | Proto.Error { kind; message } ->
      Printf.sprintf "Error(%s, %s)" (Proto.error_kind_to_string kind) message
  | Proto.Pong -> "Pong"
  | Proto.Stats_reply _ -> "Stats_reply"
  | Proto.Shutdown_ack -> "Shutdown_ack"

(* ------------------------------------------------------------------ *)
(* The headline test: N concurrent clients over the 8 seed workloads.
   Round 1 (cold) must return fresh reports byte-identical to direct
   [Pipeline.run_fresh_json] runs; round 2 (warm) must serve the same
   bytes from the cache. *)

let test_rounds () =
  (* the oracle: direct pipeline runs, computed sequentially up front
     (run_fresh_json owns the process-global obs state) *)
  let expected =
    List.map
      (fun (w : R.workload) ->
        let _, s =
          P.run_fresh_json ~label:w.R.name ~deterministic:true ~options
            w.R.source
        in
        (w.R.name, s))
      R.all
  in
  with_server @@ fun srv ->
  let clients = 4 in
  (* partition the workloads round-robin over the clients *)
  let parts = Array.make clients [] in
  List.iteri
    (fun i w -> parts.(i mod clients) <- w :: parts.(i mod clients))
    R.all;
  let round () =
    let results = Array.make clients [] in
    let threads =
      List.init clients (fun i ->
          Thread.create
            (fun () ->
              with_client srv @@ fun c ->
              results.(i) <-
                List.map
                  (fun (w : R.workload) ->
                    ( w.R.name,
                      try Ok (Client.compile c (request w)) with e -> Error e ))
                  parts.(i))
            ())
    in
    List.iter Thread.join threads;
    List.concat (Array.to_list results)
  in
  let check_round ~name ~want_cached responses =
    Alcotest.(check int) (name ^ ": all answered") (List.length R.all)
      (List.length responses);
    List.iter
      (fun (wname, r) ->
        match r with
        | Error e -> Alcotest.failf "%s %s: %s" name wname (Printexc.to_string e)
        | Ok (Proto.Report { cached; report }) ->
            Alcotest.(check bool) (name ^ " " ^ wname ^ ": cached") want_cached
              cached;
            Alcotest.(check string)
              (name ^ " " ^ wname ^ ": byte-identical to direct run")
              (List.assoc wname expected) report
        | Ok r -> Alcotest.failf "%s %s: %s" name wname (response_label r))
      responses
  in
  check_round ~name:"round1" ~want_cached:false (round ());
  check_round ~name:"round2" ~want_cached:true (round ());
  let s = Cache.stats (Server.cache srv) in
  Alcotest.(check int) "round2 all hits" (List.length R.all) s.Cache.hits;
  Alcotest.(check int) "round1 all misses" (List.length R.all) s.Cache.misses

(* ------------------------------------------------------------------ *)

let test_poisoned () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  (* a lexer error must come back as a structured Bad_input response *)
  (match
     Client.compile c
       { Proto.target = `Source "int main() { return $; }";
         options; deterministic = true; deadline_s = None }
   with
  | Proto.Error { kind = Proto.Bad_input; _ } -> ()
  | r -> Alcotest.failf "poisoned request: %s" (response_label r));
  (* ... and the daemon (and this very connection) keeps serving *)
  (match
     Client.compile c
       { Proto.target = `Source "int main() { return 0; }";
         options; deterministic = true; deadline_s = None }
   with
  | Proto.Report { cached = false; _ } -> ()
  | r -> Alcotest.failf "after poison: %s" (response_label r));
  Alcotest.(check bool) "ping after poison" true (Client.ping c)

let test_fuel_exhausted () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  (* an infinite loop under a tiny budget: a structured fuel_exhausted
     error, distinct from Bad_input, naming the budget *)
  (match
     Client.compile c
       { Proto.target = `Source "int main() { while (1) { } return 0; }";
         options = { options with P.fuel = 10_000 };
         deterministic = true; deadline_s = None }
   with
  | Proto.Error { kind = Proto.Fuel_exhausted; message } ->
      Alcotest.(check bool) "message names the budget" true
        (let sub = "10000" in
         let n = String.length message and m = String.length sub in
         let rec at i = i + m <= n && (String.sub message i m = sub || at (i + 1)) in
         at 0)
  | r -> Alcotest.failf "fuel exhaustion: %s" (response_label r));
  (* the same program with enough fuel on the same connection works *)
  (match
     Client.compile c
       { Proto.target = `Source "int main() { return 0; }";
         options; deterministic = true; deadline_s = None }
   with
  | Proto.Report _ -> ()
  | r -> Alcotest.failf "after fuel exhaustion: %s" (response_label r));
  Alcotest.(check bool) "ping after fuel exhaustion" true (Client.ping c)

let test_unknown_workload () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  match
    Client.compile c
      { Proto.target = `Workload "no-such-workload"; options;
        deterministic = true; deadline_s = None }
  with
  | Proto.Error { kind = Proto.Bad_input; _ } -> ()
  | r -> Alcotest.failf "unknown workload: %s" (response_label r)

let test_malformed_frame () =
  with_server @@ fun srv ->
  let conn = Server.loopback srv in
  Fun.protect ~finally:(fun () -> conn.Proto.close ()) @@ fun () ->
  (* a length prefix beyond max_frame: answered with a protocol error,
     then the connection is closed (the stream is desynchronised) *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Proto.max_frame + 1));
  conn.Proto.output hdr 0 4;
  (match Proto.recv_response conn with
  | Proto.Msg (Proto.Error { kind = Proto.Protocol_error; _ }) -> ()
  | Proto.Msg r -> Alcotest.failf "bad frame: %s" (response_label r)
  | Proto.End -> Alcotest.fail "bad frame: closed without an error response"
  | Proto.Garbled m -> Alcotest.failf "bad frame: garbled reply: %s" m);
  (match Proto.recv_response conn with
  | Proto.End -> ()
  | _ -> Alcotest.fail "connection not closed after framing violation");
  (* the daemon survived: a fresh connection works *)
  with_client srv @@ fun c ->
  Alcotest.(check bool) "ping after bad frame" true (Client.ping c)

let test_garbled_json () =
  with_server @@ fun srv ->
  let conn = Server.loopback srv in
  Fun.protect ~finally:(fun () -> conn.Proto.close ()) @@ fun () ->
  (* well-framed garbage: an error response, and the same connection
     keeps working *)
  Proto.write_frame conn "this is not json";
  (match Proto.recv_response conn with
  | Proto.Msg (Proto.Error { kind = Proto.Protocol_error; _ }) -> ()
  | r ->
      Alcotest.failf "garbage payload: %s"
        (match r with
        | Proto.Msg m -> response_label m
        | Proto.End -> "End"
        | Proto.Garbled m -> "Garbled " ^ m));
  Proto.send_request conn Proto.Ping;
  match Proto.recv_response conn with
  | Proto.Msg Proto.Pong -> ()
  | _ -> Alcotest.fail "connection did not survive a garbled payload"

let test_busy_shedding () =
  (* max_inflight 0: every uncached compile is shed immediately *)
  with_server
    ~config:{ Server.default_config with Server.max_inflight = 0 }
  @@ fun srv ->
  with_client srv @@ fun c ->
  (match Client.compile c (request (List.hd R.all)) with
  | Proto.Error { kind = Proto.Busy; _ } -> ()
  | r -> Alcotest.failf "expected Busy, got %s" (response_label r));
  Alcotest.(check bool) "ping while shedding" true (Client.ping c)

let test_deadline () =
  with_server
    ~config:{ Server.default_config with Server.deadline_s = 0.005 }
  @@ fun srv ->
  with_client srv @@ fun c ->
  let w = List.hd R.all in
  (* a full pipeline run takes far longer than 5 ms *)
  (match Client.compile c (request w) with
  | Proto.Error { kind = Proto.Timeout; _ } -> ()
  | r -> Alcotest.failf "expected Timeout, got %s" (response_label r));
  (* the daemon answers while the abandoned compile still runs *)
  Alcotest.(check bool) "ping during background compile" true (Client.ping c);
  (* the background worker finishes into the cache *)
  let deadline = Unix.gettimeofday () +. 60.0 in
  while Server.inflight srv > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check int) "background compile drained" 0 (Server.inflight srv);
  match Client.compile c (request w) with
  | Proto.Report { cached = true; _ } -> ()
  | r -> Alcotest.failf "expected cached Report, got %s" (response_label r)

let test_nondet_bypasses_cache () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  let req =
    { Proto.target = `Source "int main() { return 0; }";
      options; deterministic = false; deadline_s = None }
  in
  (* a non-deterministic report carries wall-clock timings, so neither
     request may be answered from the cache, and neither may fill it *)
  List.iter
    (fun name ->
      match Client.compile c req with
      | Proto.Report { cached = false; _ } -> ()
      | r -> Alcotest.failf "%s: %s" name (response_label r))
    [ "first non-det compile"; "second non-det compile" ];
  Alcotest.(check int) "cache untouched" 0
    (Cache.stats (Server.cache srv)).Cache.entries;
  (* the same source requested deterministically is cached as usual *)
  (match Client.compile c { req with Proto.deterministic = true; deadline_s = None } with
  | Proto.Report { cached = false; _ } -> ()
  | r -> Alcotest.failf "det compile: %s" (response_label r));
  match Client.compile c { req with Proto.deterministic = true; deadline_s = None } with
  | Proto.Report { cached = true; _ } -> ()
  | r -> Alcotest.failf "det recompile: %s" (response_label r)

let test_stats () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  Alcotest.(check bool) "ping" true (Client.ping c);
  let doc = Client.stats c in
  (match J.member doc "schema_version" with
  | Some (J.Int v) ->
      Alcotest.(check int) "stats schema version"
        Rp_obs.Report.schema_version v
  | _ -> Alcotest.fail "stats: no schema_version");
  let serve =
    match J.member doc "serve" with
    | Some s -> s
    | None -> Alcotest.fail "stats: no serve section"
  in
  match J.member serve "cache" with
  | Some _ -> ()
  | None -> Alcotest.fail "stats: no cache stats"

let test_shutdown () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  Alcotest.(check bool) "shutdown acked" true (Client.shutdown c);
  Alcotest.(check bool) "flag set" true (Server.shutting_down srv);
  (* a connection opened during the drain is refused new compile work *)
  with_client srv @@ fun c2 ->
  match
    Client.compile c2
      { Proto.target = `Source "int main() { return 0; }";
        options; deterministic = true; deadline_s = None }
  with
  | Proto.Error { kind = Proto.Shutting_down; _ } -> ()
  | r -> Alcotest.failf "compile during drain: %s" (response_label r)

let test_stop_idempotent () =
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  Alcotest.(check bool) "ping" true (Client.ping c);
  (* explicit stop, then the with_server finally stops again: the
     teardown must be claimed exactly once, never drained twice *)
  Server.stop srv;
  Server.stop srv

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* The register budget is part of the cache key: requests differing
   only in [regs] change the report bytes, so they must miss each
   other's entries — and each budget's own entry must still hit. *)

let test_regs_splits_cache () =
  let w = Option.get (R.find "compr") in
  (* oracle for the budgeted report, computed before the server owns
     the process-global obs state *)
  let _, direct6 =
    P.run_fresh_json ~label:w.R.name ~deterministic:true
      ~options:{ options with P.regs = Some 6 }
      w.R.source
  in
  with_server @@ fun srv ->
  with_client srv @@ fun c ->
  let req regs =
    {
      Proto.target = `Workload w.R.name;
      options = { options with P.regs };
      deterministic = true;
      deadline_s = None;
    }
  in
  let expect name want_cached r =
    match r with
    | Proto.Report { cached; report } ->
        Alcotest.(check bool) (name ^ ": cached") want_cached cached;
        report
    | r -> Alcotest.failf "%s: %s" name (response_label r)
  in
  let unbounded = expect "unbounded fresh" false (Client.compile c (req None)) in
  let budget6 =
    expect "regs 6 fresh, not a cross-hit" false (Client.compile c (req (Some 6)))
  in
  let budget8 =
    expect "regs 8 fresh, not a cross-hit" false (Client.compile c (req (Some 8)))
  in
  Alcotest.(check bool) "the budget changes the report bytes" true
    (unbounded <> budget6);
  Alcotest.(check string) "regs 6 byte-identical to the direct run" direct6
    budget6;
  (* warm round: every budget hits its own entry with stable bytes *)
  Alcotest.(check string) "unbounded warm" unbounded
    (expect "unbounded warm" true (Client.compile c (req None)));
  Alcotest.(check string) "regs 6 warm" budget6
    (expect "regs 6 warm" true (Client.compile c (req (Some 6))));
  Alcotest.(check string) "regs 8 warm" budget8
    (expect "regs 8 warm" true (Client.compile c (req (Some 8))))

(* ------------------------------------------------------------------ *)
(* The event-driven mux daemon: the same loopback discipline over a
   real socketpair into the select loop — frame reassembly, pipelining
   order, deadlines, single-flight dedup, stream poisoning, the
   persistent store across restarts, and the shard router. *)

module Mux = Rp_serve.Mux

let with_mux ?config ?shards f =
  let mx = Mux.create ?config ?shards () in
  Mux.start mx;
  Fun.protect ~finally:(fun () -> Mux.stop mx) (fun () -> f mx)

let with_mux_client mx f =
  let c = Client.of_conn (Mux.loopback mx) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp_mux_test_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* small deterministic compile requests for the mux tests; [options]
   (trace on) is reserved for the byte-identity checks *)
let mux_options = { P.default_options with P.trace = false; fuel = 10_000_000 }

let mk_compile ?deadline_s ?(options = mux_options) target =
  { Proto.target; options; deterministic = true; deadline_s }

let test_mux_rounds () =
  let ws = [ Option.get (R.find "compr"); Option.get (R.find "go") ] in
  (* oracle first: direct runs own the process-global obs state *)
  let expected =
    List.map
      (fun (w : R.workload) ->
        let _, s =
          P.run_fresh_json ~label:w.R.name ~deterministic:true ~options
            w.R.source
        in
        (w.R.name, s))
      ws
  in
  with_mux @@ fun mx ->
  with_mux_client mx @@ fun c ->
  List.iter
    (fun (w : R.workload) ->
      match Client.compile c (request w) with
      | Proto.Report { cached = false; report } ->
          Alcotest.(check string)
            (w.R.name ^ ": cold byte-identical to direct run")
            (List.assoc w.R.name expected)
            report
      | r -> Alcotest.failf "%s cold: %s" w.R.name (response_label r))
    ws;
  List.iter
    (fun (w : R.workload) ->
      match Client.compile c (request w) with
      | Proto.Report { cached = true; report } ->
          Alcotest.(check string)
            (w.R.name ^ ": warm bytes stable")
            (List.assoc w.R.name expected)
            report
      | r -> Alcotest.failf "%s warm: %s" w.R.name (response_label r))
    ws

let test_mux_pipelined_order () =
  with_mux @@ fun mx ->
  let conn = Mux.loopback mx in
  Fun.protect ~finally:(fun () -> conn.Proto.close ()) @@ fun () ->
  (* a slow compile followed by a ping on the same connection: the
     ping's answer is ready instantly, but responses are strictly
     request-ordered, so Pong must arrive after the Report *)
  Proto.send_request conn
    (Proto.Compile (mk_compile (`Workload (R.generated 60).R.name)));
  Proto.send_request conn Proto.Ping;
  (match Proto.recv_response conn with
  | Proto.Msg (Proto.Report { cached = false; _ }) -> ()
  | Proto.Msg r -> Alcotest.failf "first response: %s" (response_label r)
  | _ -> Alcotest.fail "first response: stream ended");
  match Proto.recv_response conn with
  | Proto.Msg Proto.Pong -> ()
  | Proto.Msg r -> Alcotest.failf "second response: %s" (response_label r)
  | _ -> Alcotest.fail "second response: stream ended"

let test_mux_slow_loris () =
  with_mux @@ fun mx ->
  let conn = Mux.loopback mx in
  Fun.protect ~finally:(fun () -> conn.Proto.close ()) @@ fun () ->
  let payload = J.to_string ~minify:true (Proto.request_to_json Proto.Ping) in
  let frame = Bytes.create (4 + String.length payload) in
  Bytes.set_int32_be frame 0 (Int32.of_int (String.length payload));
  Bytes.blit_string payload 0 frame 4 (String.length payload);
  (* dribble half the frame a byte at a time; the daemon must buffer
     the fragments without blocking anyone else *)
  let half = Bytes.length frame / 2 in
  for i = 0 to half - 1 do
    conn.Proto.output frame i 1;
    if i mod 5 = 0 then Thread.delay 0.001
  done;
  (* other clients are served while the loris holds its half-frame *)
  with_mux_client mx (fun c ->
      Alcotest.(check bool) "ping during partial frame" true (Client.ping c));
  for i = half to Bytes.length frame - 1 do
    conn.Proto.output frame i 1
  done;
  match Proto.recv_response conn with
  | Proto.Msg Proto.Pong -> ()
  | Proto.Msg r -> Alcotest.failf "loris reply: %s" (response_label r)
  | _ -> Alcotest.fail "loris reply: stream ended"

let test_mux_hangup_mid_response () =
  with_mux @@ fun mx ->
  (* enqueue a compile, then vanish before reading the answer: the
     daemon's write hits a dead peer and must shrug it off *)
  let conn = Mux.loopback mx in
  Proto.send_request conn
    (Proto.Compile (mk_compile (`Source "int main() { return 41; }")));
  conn.Proto.close ();
  (* give the abandoned response time to be computed and written *)
  Thread.delay 0.3;
  with_mux_client mx @@ fun c ->
  Alcotest.(check bool) "ping after hangup" true (Client.ping c);
  match
    Client.compile c (mk_compile (`Source "int main() { return 42; }"))
  with
  | Proto.Report _ -> ()
  | r -> Alcotest.failf "compile after hangup: %s" (response_label r)

let test_mux_per_request_deadline () =
  with_mux @@ fun mx ->
  with_mux_client mx @@ fun c ->
  (* a 1 ms budget on a generated workload: expired long before the
     compile lands, overriding the (huge) server default *)
  (match
     Client.compile c
       (mk_compile ~deadline_s:0.001 (`Workload (R.generated 120).R.name))
   with
  | Proto.Error { kind = Proto.Timeout; _ } -> ()
  | r -> Alcotest.failf "tiny deadline: %s" (response_label r));
  (* deadline_s = 0 means wait forever *)
  match
    Client.compile c
      (mk_compile ~deadline_s:0.0 (`Source "int main() { return 7; }"))
  with
  | Proto.Report { cached = false; _ } -> ()
  | r -> Alcotest.failf "wait-forever deadline: %s" (response_label r)

let test_mux_deadline_while_queued () =
  (* jobs = 2 gives the pool a single worker domain: the first compile
     occupies it, so the second expires without ever starting *)
  with_mux ~config:{ Mux.default_config with Mux.jobs = 2 } @@ fun mx ->
  let slow = Mux.loopback mx and fast = Mux.loopback mx in
  Fun.protect
    ~finally:(fun () ->
      slow.Proto.close ();
      fast.Proto.close ())
  @@ fun () ->
  Proto.send_request slow
    (Proto.Compile (mk_compile (`Workload (R.generated 240).R.name)));
  Thread.delay 0.05 (* let the worker pick it up *);
  Proto.send_request fast
    (Proto.Compile
       (mk_compile ~deadline_s:0.05 (`Source "int main() { return 9; }")));
  (match Proto.recv_response fast with
  | Proto.Msg (Proto.Error { kind = Proto.Timeout; _ }) -> ()
  | Proto.Msg r -> Alcotest.failf "queued request: %s" (response_label r)
  | _ -> Alcotest.fail "queued request: stream ended");
  match Proto.recv_response slow with
  | Proto.Msg (Proto.Report _) -> ()
  | Proto.Msg r -> Alcotest.failf "occupying compile: %s" (response_label r)
  | _ -> Alcotest.fail "occupying compile: stream ended"

let test_mux_dedup_single_flight () =
  with_mux @@ fun mx ->
  let conn = Mux.loopback mx in
  Fun.protect ~finally:(fun () -> conn.Proto.close ()) @@ fun () ->
  (* two identical deterministic requests back to back: the second is
     scanned while the first compiles, so it must join the in-flight
     future instead of burning a second worker *)
  let req = Proto.Compile (mk_compile (`Workload (R.generated 120).R.name)) in
  Proto.send_request conn req;
  Proto.send_request conn req;
  let report_of name =
    match Proto.recv_response conn with
    | Proto.Msg (Proto.Report { report; _ }) -> report
    | Proto.Msg r -> Alcotest.failf "%s: %s" name (response_label r)
    | _ -> Alcotest.failf "%s: stream ended" name
  in
  let r1 = report_of "first" in
  let r2 = report_of "second" in
  Alcotest.(check string) "joined twin serves identical bytes" r1 r2;
  let joins =
    match J.member (Mux.stats_doc mx) "serve" with
    | Some serve -> (
        match J.member serve "responses" with
        | Some responses -> (
            match J.member responses "dedup_joins" with
            | Some (J.Int n) -> n
            | _ -> Alcotest.fail "stats: no dedup_joins")
        | None -> Alcotest.fail "stats: no responses section")
    | None -> Alcotest.fail "stats: no serve section"
  in
  Alcotest.(check int) "exactly one dedup join" 1 joins

let test_mux_oversized_poisons () =
  with_mux @@ fun mx ->
  let conn = Mux.loopback mx in
  Fun.protect ~finally:(fun () -> conn.Proto.close ()) @@ fun () ->
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Proto.max_frame + 1));
  conn.Proto.output hdr 0 4;
  (match Proto.recv_response conn with
  | Proto.Msg (Proto.Error { kind = Proto.Protocol_error; _ }) -> ()
  | Proto.Msg r -> Alcotest.failf "oversized frame: %s" (response_label r)
  | Proto.End -> Alcotest.fail "oversized frame: closed without an error"
  | Proto.Garbled m -> Alcotest.failf "oversized frame: garbled: %s" m);
  (match Proto.recv_response conn with
  | Proto.End -> ()
  | _ -> Alcotest.fail "stream not poisoned after oversized frame");
  with_mux_client mx @@ fun c ->
  Alcotest.(check bool) "daemon survives" true (Client.ping c)

let test_mux_store_restart () =
  with_tmp_dir @@ fun dir ->
  let config = { Mux.default_config with Mux.cache_dir = Some dir } in
  let req = mk_compile (`Source "int main() { return 40 + 2; }") in
  let report1 =
    with_mux ~config @@ fun mx ->
    with_mux_client mx @@ fun c ->
    match Client.compile c req with
    | Proto.Report { cached = false; report } -> report
    | r -> Alcotest.failf "first daemon: %s" (response_label r)
  in
  (* a fresh daemon over the same directory: warm from request one,
     byte-identical across the restart *)
  with_mux ~config @@ fun mx ->
  with_mux_client mx @@ fun c ->
  match Client.compile c req with
  | Proto.Report { cached = true; report } ->
      Alcotest.(check string) "bytes survive the restart" report1 report
  | r -> Alcotest.failf "after restart: %s" (response_label r)

let test_mux_shard_router () =
  with_tmp_dir @@ fun dir ->
  let w = Option.get (R.find "compr") in
  (* oracle before any daemon owns the obs state *)
  let _, direct =
    P.run_fresh_json ~label:w.R.name ~deterministic:true ~options w.R.source
  in
  let spath i = Filename.concat dir (Printf.sprintf "shard%d.sock" i) in
  let shard_muxes = Array.init 2 (fun _ -> Mux.create ()) in
  let shard_threads =
    Array.mapi
      (fun i mx ->
        Thread.create (fun () -> Mux.serve_unix mx ~path:(spath i)) ())
      shard_muxes
  in
  let router = Mux.create ~shards:(Array.init 2 spath) () in
  Mux.start router;
  Fun.protect
    ~finally:(fun () ->
      (* stopping the router relays Shutdown to the fleet, so the
         shard serve loops drain and their threads join *)
      Mux.stop router;
      Array.iter Thread.join shard_threads)
  @@ fun () ->
  with_mux_client router @@ fun c ->
  let srcs =
    List.init 6 (fun i -> Printf.sprintf "int main() { return %d; }" i)
  in
  let fresh =
    List.map
      (fun s ->
        match Client.compile c (mk_compile (`Source s)) with
        | Proto.Report { cached = false; report } -> report
        | r -> Alcotest.failf "router fresh %s: %s" s (response_label r))
      srcs
  in
  (* replay: every request hits the cache of the shard that owns its
     key, with stable bytes relayed verbatim *)
  List.iter2
    (fun s want ->
      match Client.compile c (mk_compile (`Source s)) with
      | Proto.Report { cached = true; report } ->
          Alcotest.(check string) ("router warm " ^ s) want report
      | r -> Alcotest.failf "router warm %s: %s" s (response_label r))
    srcs fresh;
  (* byte identity holds through the relay *)
  (match Client.compile c { (request w) with Proto.deadline_s = None } with
  | Proto.Report { cached = false; report } ->
      Alcotest.(check string) "relayed report byte-identical" direct report
  | r -> Alcotest.failf "relayed workload: %s" (response_label r));
  (* the stats document names the fleet *)
  match J.member (Mux.stats_doc router) "serve" with
  | Some serve -> (
      match J.member serve "shards" with
      | Some (J.Int 2) -> ()
      | _ -> Alcotest.fail "router stats: no shards = 2")
  | None -> Alcotest.fail "router stats: no serve section"

let suite =
  [
    Alcotest.test_case "concurrent rounds, byte-identity, cache" `Slow
      test_rounds;
    Alcotest.test_case "regs splits the cache" `Quick test_regs_splits_cache;
    Alcotest.test_case "poisoned request" `Quick test_poisoned;
    Alcotest.test_case "fuel-exhausted structured error" `Quick
      test_fuel_exhausted;
    Alcotest.test_case "unknown workload" `Quick test_unknown_workload;
    Alcotest.test_case "malformed frame" `Quick test_malformed_frame;
    Alcotest.test_case "garbled json payload" `Quick test_garbled_json;
    Alcotest.test_case "busy shedding" `Quick test_busy_shedding;
    Alcotest.test_case "deadline timeout" `Slow test_deadline;
    Alcotest.test_case "non-deterministic bypasses cache" `Quick
      test_nondet_bypasses_cache;
    Alcotest.test_case "stats document" `Quick test_stats;
    Alcotest.test_case "shutdown drain" `Quick test_shutdown;
    Alcotest.test_case "stop idempotent" `Quick test_stop_idempotent;
    Alcotest.test_case "mux rounds byte-identical" `Slow test_mux_rounds;
    Alcotest.test_case "mux pipelined responses ordered" `Slow
      test_mux_pipelined_order;
    Alcotest.test_case "mux slow-loris partial frames" `Quick
      test_mux_slow_loris;
    Alcotest.test_case "mux hangup mid-response" `Quick
      test_mux_hangup_mid_response;
    Alcotest.test_case "mux per-request deadline" `Slow
      test_mux_per_request_deadline;
    Alcotest.test_case "mux deadline while queued" `Slow
      test_mux_deadline_while_queued;
    Alcotest.test_case "mux single-flight dedup" `Slow
      test_mux_dedup_single_flight;
    Alcotest.test_case "mux oversized frame poisons stream" `Quick
      test_mux_oversized_poisons;
    Alcotest.test_case "mux store survives restart" `Quick
      test_mux_store_restart;
    Alcotest.test_case "mux shard router" `Slow test_mux_shard_router;
  ]
