(* Static operation counts — the paper's Table 1 metric. *)

open Rp_ir

type counts = { loads : int; stores : int }

let zero = { loads = 0; stores = 0 }

let add a b = { loads = a.loads + b.loads; stores = a.stores + b.stores }

let of_func (f : Func.t) : counts =
  Func.fold_blocks
    (fun acc b ->
      Iseq.fold_left
        (fun acc (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Load _ -> { acc with loads = acc.loads + 1 }
          | Instr.Store _ -> { acc with stores = acc.stores + 1 }
          | _ -> acc)
        acc b.Block.body)
    zero f

let of_prog (p : Func.prog) : counts =
  List.fold_left (fun acc f -> add acc (of_func f)) zero p.Func.funcs

(* The paper reports improvement as (before - after) / before * 100;
   static counts typically get worse (negative improvement). *)
let improvement ~before ~after =
  if before = 0 then 0.0
  else float_of_int (before - after) /. float_of_int before *. 100.0

let to_alist c = [ ("loads", c.loads); ("stores", c.stores) ]

let pp fmt c = Format.fprintf fmt "{loads=%d; stores=%d}" c.loads c.stores
