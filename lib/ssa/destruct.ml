(* Out-of-SSA translation.

   Register phis are replaced by copies at the end of each predecessor.
   All phis of a block form one parallel assignment, so the per-pred
   copy groups are sequentialised with temporaries when they form
   cycles (the classic "parallel move" problem).

   Memory phis are simply dropped and every singleton resource is
   rewritten to version 0 — this is the paper's "when we leave SSA
   form, all of the singleton memory resources that refer to the same
   memory location must be replaced by one unique name".  It is sound
   because SSA guarantees at most one name per location is live at any
   point, so collapsing the names cannot merge live ranges.

   The function assumes no critical edges (established by the pipeline
   before SSA construction), so inserting copies at the end of a
   predecessor only affects the one edge carrying the phi value. *)

open Rp_ir

(* Sequentialise the parallel assignment [moves] = [(dst, src); ...].
   Emits a minimal sequence of sequential copies, using one fresh
   temporary per cycle. *)
let sequentialise (f : Func.t) (moves : (Ids.reg * Instr.operand) list) :
    (Ids.reg * Instr.operand) list =
  (* drop self-moves *)
  let moves =
    List.filter (fun (d, s) -> s <> Instr.Reg d) moves
  in
  let pending = ref moves in
  let out = ref [] in
  let emit d s = out := (d, s) :: !out in
  let is_source r =
    List.exists (fun (_, s) -> s = Instr.Reg r) !pending
  in
  (* every round either emits all ready moves or breaks one cycle, so
     [pending] strictly shrinks and the loop terminates *)
  while !pending <> [] do
    let ready, blocked =
      List.partition (fun (d, _) -> not (is_source d)) !pending
    in
    if ready <> [] then begin
      List.iter (fun (d, s) -> emit d s) ready;
      pending := blocked
    end
    else
      match blocked with
      | [] -> ()
      | (d, s) :: rest ->
          (* a cycle: break it by copying one destination to a temp *)
          let tmp = Func.fresh_reg ~name:"swap" f in
          emit tmp (Instr.Reg d);
          (* uses of d as a source now read the temp *)
          let rest =
            List.map
              (fun (d', s') ->
                if s' = Instr.Reg d then (d', Instr.Reg tmp) else (d', s'))
              rest
          in
          let s = if s = Instr.Reg d then Instr.Reg tmp else s in
          emit d s;
          pending := rest
  done;
  List.rev !out

(* Lower [f] out of SSA and return the iids of the copies inserted for
   the phi moves.  The backend needs the set: phi-lowering moves are an
   artefact of leaving SSA — the oracle engines evaluate phis as
   parallel assignments that consume neither fuel nor instruction
   counts, so the compiled engine must not charge for them either. *)
let lower (f : Func.t) : Ids.IntSet.t =
  Cfg.recompute_preds f;
  (* collect per-pred copy groups from register phis *)
  let copies : (Ids.bid, (Ids.reg * Instr.operand) list) Hashtbl.t =
    Hashtbl.create 16
  in
  Func.iter_blocks
    (fun b ->
      Iseq.iter
        (fun (i : Instr.t) ->
          match i.op with
          | Instr.Rphi { dst; srcs } ->
              List.iter
                (fun (p, r) ->
                  let cur =
                    match Hashtbl.find_opt copies p with
                    | Some l -> l
                    | None -> []
                  in
                  Hashtbl.replace copies p ((dst, Instr.Reg r) :: cur))
                srcs
          | _ -> ())
        b.phis)
    f;
  let inserted = ref Ids.IntSet.empty in
  Hashtbl.iter
    (fun pred moves ->
      let b = Func.block f pred in
      List.iter
        (fun (d, s) ->
          let i = Func.mk_instr f (Instr.Copy { dst = d; src = s }) in
          inserted := Ids.IntSet.add i.Instr.iid !inserted;
          Block.insert_at_end b i)
        (sequentialise f moves))
    copies;
  (* drop all phis, unversion all resources *)
  let unversion (r : Resource.t) = Resource.unversioned r.Resource.base in
  Func.iter_blocks
    (fun b ->
      Iseq.clear b.phis;
      Iseq.iter
        (fun (i : Instr.t) ->
          i.op <- Instr.map_mem_uses unversion i.op;
          i.op <- Instr.map_mem_defs unversion i.op)
        b.body)
    f;
  !inserted

let run (f : Func.t) : unit = ignore (lower f)
