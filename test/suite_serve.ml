(* The compile service, below the server: Protocol framing and codec
   round trips (QCheck over arbitrary bytes and generated option
   records), and the Cache against a naive assoc-list LRU model. *)

module Proto = Rp_serve.Protocol
module Cache = Rp_serve.Cache
module P = Rp_core.Pipeline
module J = Rp_obs.Json
module G = QCheck.Gen

let qtest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5e14e |]) t

(* ------------------------------------------------------------------ *)
(* An in-memory conn: reads consume a fixed input string, writes
   append to a buffer. *)

let conn_of_string (input : string) : Proto.conn * Buffer.t =
  let out = Buffer.create 64 in
  let pos = ref 0 in
  ( {
      Proto.input =
        (fun buf off len ->
          let n = min len (String.length input - !pos) in
          Bytes.blit_string input !pos buf off n;
          pos := !pos + n;
          n);
      output = (fun buf off len -> Buffer.add_subbytes out buf off len);
      close = (fun () -> ());
    },
    out )

let written_by f =
  let conn, out = conn_of_string "" in
  f conn;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Framing *)

let frame_to_string = function
  | Proto.Frame s -> Printf.sprintf "Frame %S" s
  | Proto.Eof -> "Eof"
  | Proto.Bad m -> Printf.sprintf "Bad %S" m

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let wire = written_by (fun c -> Proto.write_frame c payload) in
      let conn, _ = conn_of_string wire in
      (match Proto.read_frame conn with
      | Proto.Frame got -> Alcotest.(check string) "payload" payload got
      | r -> Alcotest.failf "expected Frame, got %s" (frame_to_string r));
      match Proto.read_frame conn with
      | Proto.Eof -> ()
      | r -> Alcotest.failf "expected Eof after frame, got %s" (frame_to_string r))
    [ ""; "x"; "{\"a\":1}"; String.make 70_000 '\xff' ]

let test_frame_oversized_write () =
  match Proto.write_frame (fst (conn_of_string ""))
          (String.make (Proto.max_frame + 1) 'a')
  with
  | () -> Alcotest.fail "oversized write accepted"
  | exception Invalid_argument _ -> ()

let test_frame_oversized_length () =
  (* a header announcing more than max_frame must be rejected before
     any allocation-by-attacker *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Proto.max_frame + 1));
  let conn, _ = conn_of_string (Bytes.to_string hdr ^ "xxxx") in
  match Proto.read_frame conn with
  | Proto.Bad _ -> ()
  | r -> Alcotest.failf "expected Bad, got %s" (frame_to_string r)

let test_frame_negative_length () =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (-1l);
  let conn, _ = conn_of_string (Bytes.to_string hdr) in
  match Proto.read_frame conn with
  | Proto.Bad _ -> ()
  | r -> Alcotest.failf "expected Bad, got %s" (frame_to_string r)

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame round trip (arbitrary bytes)" ~count:300
    QCheck.(string_gen_of_size (G.int_bound 400) G.char)
    (fun payload ->
      let wire = written_by (fun c -> Proto.write_frame c payload) in
      let conn, _ = conn_of_string wire in
      match Proto.read_frame conn with
      | Proto.Frame got -> got = payload && Proto.read_frame conn = Proto.Eof
      | _ -> false)

let prop_frame_truncated =
  (* chopping any strict prefix of a frame yields Bad (inside header or
     payload) or Eof (nothing at all) — never a Frame, never a crash *)
  QCheck.Test.make ~name:"truncated frame never decodes" ~count:300
    QCheck.(
      pair
        (string_gen_of_size (G.int_bound 60) G.char)
        (float_bound_inclusive 1.0))
    (fun (payload, cut) ->
      let wire = written_by (fun c -> Proto.write_frame c payload) in
      let keep = int_of_float (cut *. float_of_int (String.length wire)) in
      let keep = min keep (String.length wire - 1) in
      let conn, _ = conn_of_string (String.sub wire 0 (max keep 0)) in
      match Proto.read_frame conn with
      | Proto.Frame _ -> false
      | Proto.Eof -> keep = 0
      | Proto.Bad _ -> keep > 0)

(* ------------------------------------------------------------------ *)
(* Request/response codecs *)

let gen_options : P.options G.t =
  let open G in
  let* engine = oneofl [ Rp_ssa.Incremental.Cytron; Rp_ssa.Incremental.Sreedhar_gao ] in
  let* allow_store_removal = bool and* insert_dummies = bool in
  let* min_profit = float_bound_inclusive 10.0 in
  let* static = bool in
  let* fuel = int_range 0 100_000_000 in
  let* singleton_deref = bool and* checkpoints = bool and* trace = bool in
  let* jobs = int_range 1 8 in
  let* flat = bool in
  let* regs = opt (int_range 1 64) in
  let* spill_order = bool in
  return
    {
      P.promote =
        {
          Rp_core.Promote.engine;
          allow_store_removal;
          cost = { Rp_core.Cost_model.min_profit; regs = None; spill_order = false };
          insert_dummies;
        };
      profile = (if static then P.Static_estimate else P.Measured);
      fuel;
      singleton_deref;
      checkpoints;
      trace;
      jobs;
      interp = (if flat then P.Flat else P.Tree);
      regs;
      spill_order;
    }

let gen_request : Proto.request G.t =
  let open G in
  let gen_compile =
    let* options = gen_options in
    let* deterministic = bool in
    let* target =
      oneof
        [
          map (fun s -> `Source s) (string_size (int_bound 200));
          map (fun s -> `Workload s) (oneofl [ "go"; "li"; "compr"; "nope" ]);
        ]
    in
    return (Proto.Compile { Proto.target; options; deterministic })
  in
  oneof
    [
      gen_compile;
      return Proto.Ping;
      return Proto.Stats;
      return Proto.Shutdown;
    ]

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec round trip" ~count:300
    (QCheck.make gen_request) (fun req ->
      match Proto.request_of_json (Proto.request_to_json req) with
      | Ok got -> got = req
      | Error _ -> false)

let gen_response : Proto.response G.t =
  let open G in
  oneof
    [
      (let* cached = bool in
       let* report = string_size (int_bound 300) in
       return (Proto.Report { cached; report }));
      (let* kind =
         oneofl
           [
             Proto.Bad_input;
             Proto.Fuel_exhausted;
             Proto.Timeout;
             Proto.Busy;
             Proto.Protocol_error;
             Proto.Shutting_down;
             Proto.Internal;
           ]
       in
       let* message = string_size (int_bound 100) in
       return (Proto.Error { kind; message }));
      return Proto.Pong;
      return (Proto.Stats_reply (J.Obj [ ("x", J.Int 1); ("y", J.Str "z") ]));
      return Proto.Shutdown_ack;
    ]

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response codec round trip" ~count:300
    (QCheck.make gen_response) (fun resp ->
      match Proto.response_of_json (Proto.response_to_json resp) with
      | Ok got -> got = resp
      | Error _ -> false)

let prop_decode_total =
  (* any bytes: decoding yields Garbled/End/Msg, never an exception *)
  QCheck.Test.make ~name:"recv_request total on arbitrary frames" ~count:300
    QCheck.(string_gen_of_size (G.int_bound 200) G.char)
    (fun payload ->
      let wire = written_by (fun c -> Proto.write_frame c payload) in
      let conn, _ = conn_of_string wire in
      match Proto.recv_request conn with
      | Proto.Msg _ | Proto.End | Proto.Garbled _ -> true)

let test_fingerprint_jobs () =
  let o = P.default_options in
  let o2 = { o with P.jobs = o.P.jobs + 3 } in
  Alcotest.(check bool)
    "jobs split the plain fingerprint" true
    (Proto.options_fingerprint o <> Proto.options_fingerprint o2);
  Alcotest.(check string) "jobs dropped from the key fingerprint"
    (Proto.options_fingerprint ~for_key:true o)
    (Proto.options_fingerprint ~for_key:true o2);
  let o3 = { o with P.interp = P.Tree } in
  Alcotest.(check bool)
    "interp splits the plain fingerprint" true
    (Proto.options_fingerprint o <> Proto.options_fingerprint o3);
  Alcotest.(check string) "interp dropped from the key fingerprint"
    (Proto.options_fingerprint ~for_key:true o)
    (Proto.options_fingerprint ~for_key:true o3)

let test_bad_request_documents () =
  List.iter
    (fun doc ->
      match Proto.request_of_json doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded %s" (J.to_string doc))
    [
      J.Null;
      J.Int 3;
      J.Obj [];
      J.Obj [ ("v", J.Int Proto.version) ];
      (* wrong version *)
      J.Obj [ ("v", J.Int (Proto.version + 1)); ("req", J.Str "ping") ];
      J.Obj [ ("v", J.Int Proto.version); ("req", J.Str "no-such") ];
      (* compile without a target *)
      J.Obj [ ("v", J.Int Proto.version); ("req", J.Str "compile") ];
    ]

(* ------------------------------------------------------------------ *)
(* Cache: units *)

let test_cache_basics () =
  let c = Cache.create ~max_bytes:10_000 ~max_entries:8 () in
  Alcotest.(check (option string)) "miss" None (Cache.find c "a");
  Cache.add c ~key:"a" "1";
  Cache.add c ~key:"b" "2";
  Alcotest.(check (option string)) "hit" (Some "1") (Cache.find c "a");
  (* the hit refreshed "a": MRU order is a, b *)
  Alcotest.(check (list string)) "mru order" [ "a"; "b" ] (Cache.keys_mru c);
  Cache.add c ~key:"a" "one";
  Alcotest.(check (option string)) "replace" (Some "one") (Cache.find c "a");
  let s = Cache.stats c in
  Alcotest.(check int) "entries" 2 s.Cache.entries;
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Cache.clear c;
  Alcotest.(check int) "cleared" 0 (Cache.stats c).Cache.entries;
  Alcotest.(check int) "cleared bytes" 0 (Cache.stats c).Cache.bytes

let test_cache_entry_eviction () =
  let c = Cache.create ~max_bytes:1_000_000 ~max_entries:3 () in
  List.iter (fun k -> Cache.add c ~key:k "v") [ "a"; "b"; "c"; "d" ];
  Alcotest.(check (list string)) "LRU evicted" [ "d"; "c"; "b" ]
    (Cache.keys_mru c);
  Alcotest.(check int) "eviction counted" 1 (Cache.stats c).Cache.evictions

let test_cache_byte_eviction () =
  (* cost = |key| + |value| + 64; key "a" + 35-byte value = 100 *)
  let c = Cache.create ~max_bytes:250 ~max_entries:100 () in
  let v = String.make 35 'x' in
  Cache.add c ~key:"a" v;
  Cache.add c ~key:"b" v;
  Cache.add c ~key:"c" v;
  Alcotest.(check (list string)) "byte bound evicts LRU" [ "c"; "b" ]
    (Cache.keys_mru c);
  Alcotest.(check int) "bytes accounted" 200 (Cache.stats c).Cache.bytes

let test_cache_oversized () =
  let c = Cache.create ~max_bytes:100 ~max_entries:100 () in
  Cache.add c ~key:"small" "v";
  Cache.add c ~key:"big" (String.make 200 'x');
  Alcotest.(check (option string)) "oversized not cached" None
    (Cache.find c "big");
  Alcotest.(check (option string)) "oversized did not flush others" (Some "v")
    (Cache.find c "small")

let test_cache_key_distinct () =
  let fp o = Proto.options_fingerprint ~for_key:true o in
  let o = P.default_options in
  let k = Cache.key ~source:"s" ~options_fp:(fp o) ~label:"l" ~deterministic:true in
  let distinct =
    [
      Cache.key ~source:"s2" ~options_fp:(fp o) ~label:"l" ~deterministic:true;
      Cache.key ~source:"s" ~options_fp:(fp { o with P.fuel = 7 }) ~label:"l"
        ~deterministic:true;
      Cache.key ~source:"s" ~options_fp:(fp o) ~label:"l2" ~deterministic:true;
      Cache.key ~source:"s" ~options_fp:(fp o) ~label:"l" ~deterministic:false;
    ]
  in
  List.iter
    (fun k' -> Alcotest.(check bool) "key differs" true (k <> k'))
    distinct;
  Alcotest.(check string) "key stable" k
    (Cache.key ~source:"s" ~options_fp:(fp o) ~label:"l" ~deterministic:true)

(* ------------------------------------------------------------------ *)
(* Cache: differential oracle against a naive assoc-list LRU *)

module Model = struct
  (* MRU-first assoc list, same cost accounting as the real cache *)
  type t = {
    mutable entries : (string * string) list;
    max_bytes : int;
    max_entries : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~max_bytes ~max_entries =
    { entries = []; max_bytes; max_entries; hits = 0; misses = 0; evictions = 0 }

  let cost (k, v) = String.length k + String.length v + 64
  let bytes m = List.fold_left (fun a e -> a + cost e) 0 m.entries

  let find m k =
    match List.assoc_opt k m.entries with
    | Some v ->
        m.hits <- m.hits + 1;
        m.entries <- (k, v) :: List.remove_assoc k m.entries;
        Some v
    | None ->
        m.misses <- m.misses + 1;
        None

  let add m k v =
    if cost (k, v) <= m.max_bytes && m.max_entries > 0 then begin
      m.entries <- (k, v) :: List.remove_assoc k m.entries;
      while bytes m > m.max_bytes || List.length m.entries > m.max_entries do
        m.entries <- List.rev (List.tl (List.rev m.entries));
        m.evictions <- m.evictions + 1
      done
    end
end

type cache_op = Find of string | Add of string * string

let gen_ops : cache_op list G.t =
  let open G in
  let key = map (fun i -> "k" ^ string_of_int i) (int_bound 7) in
  let op =
    oneof
      [
        map (fun k -> Find k) key;
        map2 (fun k n -> Add (k, String.make n 'v')) key (int_bound 120);
      ]
  in
  list_size (int_bound 60) op

let prop_cache_matches_model =
  QCheck.Test.make ~name:"cache vs assoc-list LRU model" ~count:500
    (QCheck.make gen_ops ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | Find k -> "F" ^ k
                | Add (k, v) -> Printf.sprintf "A%s/%d" k (String.length v))
              ops)))
    (fun ops ->
      let max_bytes = 400 and max_entries = 4 in
      let c = Cache.create ~max_bytes ~max_entries () in
      let m = Model.create ~max_bytes ~max_entries in
      List.for_all
        (fun op ->
          (match op with
          | Find k -> Cache.find c k = Model.find m k
          | Add (k, v) ->
              Cache.add c ~key:k v;
              Model.add m k v;
              true)
          &&
          let s = Cache.stats c in
          Cache.keys_mru c = List.map fst m.Model.entries
          && s.Cache.entries = List.length m.Model.entries
          && s.Cache.bytes = Model.bytes m
          && s.Cache.hits = m.Model.hits
          && s.Cache.misses = m.Model.misses
          && s.Cache.evictions = m.Model.evictions)
        ops)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "oversized write refused" `Quick test_frame_oversized_write;
    Alcotest.test_case "oversized length rejected" `Quick
      test_frame_oversized_length;
    Alcotest.test_case "negative length rejected" `Quick
      test_frame_negative_length;
    qtest prop_frame_roundtrip;
    qtest prop_frame_truncated;
    qtest prop_request_roundtrip;
    qtest prop_response_roundtrip;
    qtest prop_decode_total;
    Alcotest.test_case "fingerprint drops jobs for keys" `Quick
      test_fingerprint_jobs;
    Alcotest.test_case "bad request documents rejected" `Quick
      test_bad_request_documents;
    Alcotest.test_case "cache basics" `Quick test_cache_basics;
    Alcotest.test_case "cache entry-bound eviction" `Quick
      test_cache_entry_eviction;
    Alcotest.test_case "cache byte-bound eviction" `Quick
      test_cache_byte_eviction;
    Alcotest.test_case "cache oversized entry" `Quick test_cache_oversized;
    Alcotest.test_case "cache keys distinct" `Quick test_cache_key_distinct;
    qtest prop_cache_matches_model;
  ]
