(* "blur" — 1-D 7-tap stencil, the flagship scalar-replacement shape.

   Each iteration reads sig[i-3] .. sig[i+3]: seven array loads of
   which six were already loaded by earlier iterations (reuse distance
   1..6).  With --scalrep the window lives in seven rotating scalar
   cells, so steady state costs one fill load per iteration — a ~7x
   cut in dynamic array loads.  Without it the subscripted reads are
   aliased accesses the interval promoter cannot touch, so the
   workload isolates exactly what the affine-reuse subsystem adds. *)

let name = "blur"

let description =
  "1-D 7-tap box blur over a signal buffer; every output reads a \
   7-element sliding window, so --scalrep trades ~7 array loads per \
   iteration for one fill plus register-resident rotation"

let source =
  {|
// blur: sliding-window stencil, repeated over rounds.
int sig[256];
int out[256];
int checksum = 0;

void fill() {
  int i;
  int v = 7;
  for (i = 0; i < 256; i++) {
    v = (v * 29 + 13) % 211;
    sig[i] = v;              // writes only: nothing to replace here
  }
}

// the hot loop: 7 affine reads of sig per iteration, one aliased
// store to out (write-only, stays in memory), scalar accumulation
void blur_pass() {
  int i;
  int acc = 0;
  for (i = 3; i < 253; i++) {
    int t = sig[i - 3] + sig[i - 2] + sig[i - 1] + sig[i]
          + sig[i + 1] + sig[i + 2] + sig[i + 3];
    out[i] = t / 7;
    acc = acc + t;
  }
  checksum = (checksum + acc) % 65536;
}

int main() {
  int round;
  fill();
  for (round = 0; round < 200; round++) {
    blur_pass();
  }
  print(checksum);
  return checksum % 251;
}
|}
