(* The end-to-end compilation pipeline:

     MiniC --frontend--> IR --normalise--> interval trees
           --SSA--> pruned SSA over registers and memory resources
           --clean--> fair baseline (copy propagation + DCE)
           --interpret--> baseline dynamic counts + execution profile
           --promote--> the paper's algorithm, bottom-up per interval
           --clean--> remove promotion copies and dead code
           --interpret--> dynamic counts after promotion + oracle check

   Everything is measured on the same program object; the [report]
   captures before/after static and dynamic counts plus the behaviour
   check (printed output and exit value must be unchanged).

   Every stage runs inside an [Rp_obs.Trace] span, absolute sizes and
   before/after counts land in the [Rp_obs.Metrics] registry, and
   [json_report] serialises the whole run as a versioned JSON document.
   With [checkpoints = true] the structural validator (and, once the
   program is in SSA form, the SSA verifier) runs after every
   instrumented pass, each check recorded as its own span.

   Concurrency model.  The paper's algorithm is strictly per-function,
   so with [jobs > 1] every per-function stage — normalisation, SSA
   construction, verification, cleanup, promotion, checkpoints — fans
   out over a [Rp_par.Pool] of OCaml domains, one task per function.
   Tasks own their function outright and only read the shared variable
   table; the observability layer is the one shared sink and is
   thread-safe ([Metrics]) or per-domain with deterministic stitching
   ([Trace.capture]/[graft] in [par_funcs]).  The interpreter runs
   (profiling and the final measurement) stay serial: they execute the
   whole program against global memory and are the correctness oracle
   the parallel compile is judged against.  Output is bit-identical to
   a serial run whatever [jobs] is. *)

open Rp_ir
open Rp_analysis
open Rp_ssa
module Interp = Rp_interp.Interp
module Decode = Rp_interp.Decode
module Engine = Rp_interp.Engine
module Rcompile = Rp_interp.Rcompile
module Rengine = Rp_interp.Rengine
module Lower = Rp_minic.Lower
module Trace = Rp_obs.Trace
module Metrics = Rp_obs.Metrics
module Pool = Rp_par.Pool
module J = Rp_obs.Json

type profile_source = Measured | Static_estimate
type interp_engine = Flat | Tree | Reg | Fused

(* Every enum option follows the same symmetric codec convention:
   [x_to_string] names each constructor, [x_of_string] is total and
   accepts exactly those names (plus documented abbreviations),
   returning [None] otherwise.  [Incremental.engine_of_string] is the
   third member of the family. *)

let interp_engine_of_string = function
  | "flat" -> Some Flat
  | "tree" -> Some Tree
  | "reg" -> Some Reg
  | "fused" -> Some Fused
  | _ -> None

let interp_engine_to_string = function
  | Flat -> "flat"
  | Tree -> "tree"
  | Reg -> "reg"
  | Fused -> "fused"

let profile_source_of_string = function
  | "measured" -> Some Measured
  | "static" -> Some Static_estimate
  | _ -> None

let profile_source_to_string = function
  | Measured -> "measured"
  | Static_estimate -> "static"

type options = {
  promote : Promote.config;
  profile : profile_source;
  fuel : int;  (** interpreter instruction budget per run *)
  singleton_deref : bool;
      (** lower unambiguous pointer dereferences as singleton accesses *)
  checkpoints : bool;
      (** validate (and verify, once in SSA) after every pass *)
  trace : bool;  (** collect spans even when the sink is [Off] *)
  jobs : int;
      (** compile [jobs] functions concurrently on OCaml domains;
          1 (the default) keeps everything on the calling domain *)
  interp : interp_engine;
      (** which interpreter runs the profiling and measurement passes:
          the flat-decoded engine (default) or the tree-walking oracle;
          both produce identical observable results *)
  regs : int option;
      (** register budget for pressure-aware promotion; None (the
          default) is the paper-faithful unbounded behaviour.  Unlike
          [jobs]/[interp] this changes output, so the compile service
          keys its cache on it. *)
  spill_order : bool;
      (** with a budget: order and gate webs by the allocator's
          predicted spill-count delta (spill-cost-weighted profit)
          instead of the unit growth estimate.  Changes output, so it
          is part of the serve cache key. *)
  scalrep : bool;
      (** scalar replacement of affine array references: rewrite
          eligible [for] loops before lowering so array elements with
          constant reuse distance become promotable scalar cells
          ([Rp_scalrep]).  Changes output, so it is part of the serve
          cache key. *)
}

let default_options =
  {
    promote = Promote.default_config;
    profile = Measured;
    fuel = 50_000_000;
    singleton_deref = false;
    checkpoints = false;
    trace = false;
    jobs = 1;
    interp = Flat;
    regs = None;
    spill_order = false;
    scalrep = false;
  }

(* [options.regs] is authoritative when set; otherwise a budget placed
   directly in the cost model (API users) still counts. *)
let effective_regs (options : options) : int option =
  match options.regs with
  | Some _ as k -> k
  | None -> options.promote.Promote.cost.Cost_model.regs

let effective_spill_order (options : options) : bool =
  options.spill_order
  || options.promote.Promote.cost.Cost_model.spill_order

let effective_promote (options : options) : Promote.config =
  let cost = options.promote.Promote.cost in
  let cost =
    match options.regs with
    | None -> cost
    | Some _ as k -> { cost with Cost_model.regs = k }
  in
  let cost =
    if options.spill_order then { cost with Cost_model.spill_order = true }
    else cost
  in
  if cost == options.promote.Promote.cost then options.promote
  else { options.promote with Promote.cost = cost }

type func_pressure = {
  fp_name : string;
  fp_before : Rp_regalloc.Color.summary;
  fp_after : Rp_regalloc.Color.summary;
}

type report = {
  prog : Func.prog;
  trees : (string * Intervals.tree) list;
  static_before : Stats.counts;
  static_after : Stats.counts;
  dynamic_before : Interp.counters;
  dynamic_after : Interp.counters;
  promote_stats : Promote.stats;
  per_function : (string * Promote.stats) list;
  behaviour_ok : bool;
  baseline : Interp.result;
  final : Interp.result;
  pressure : func_pressure list;
  pressure_regs : int option;
  scalrep_stats : Rp_scalrep.Transform.stats option;
      (** [Some] iff [options.scalrep] ran *)
  timing : (string * float) list;
}

(* The promoter's engine choice also drives initial SSA construction;
   the two modules declare structurally identical types. *)
let construct_engine = function
  | Incremental.Cytron -> Construct.Cytron
  | Incremental.Sreedhar_gao -> Construct.Sreedhar_gao

(* Fan one task per function out through the pool.  Each task's spans
   are captured on whichever domain executes it and grafted back in
   program order once the batch joins, so the collected trace — and
   hence the JSON report — has the same shape (and, under a
   deterministic clock, the same bytes) for any [jobs]. *)
let par_funcs pool (work : Func.t -> 'a) (fs : Func.t list) : 'a list =
  Pool.map pool (fun f -> Trace.capture (fun () -> work f)) fs
  |> List.map (fun (v, captured) ->
         Trace.graft captured;
         v)

let par_iter_funcs pool (work : Func.t -> unit) (fs : Func.t list) : unit =
  ignore (par_funcs pool work fs)

(* IR size gauges, refreshed after the phases that change them. *)
let record_ir_size (prog : Func.prog) =
  let blocks, instrs, phis =
    List.fold_left
      (fun acc f ->
        Func.fold_blocks
          (fun (bs, is, ps) b ->
            ( bs + 1,
              is + Iseq.length b.Block.body,
              ps + Iseq.length b.Block.phis ))
          acc f)
      (0, 0, 0) prog.Func.funcs
  in
  Metrics.set_gauge "ir.blocks" (float_of_int blocks);
  Metrics.set_gauge "ir.instrs" (float_of_int instrs);
  Metrics.set_gauge "ir.phis" (float_of_int phis)

(* One function's debug check: the structural validator always, the
   SSA verifier once the program is in SSA form. *)
let check_func ~(ssa : bool) vartab (f : Func.t) =
  Validate.assert_ok vartab f;
  if ssa then Verify.assert_ok vartab f

(* A whole-program checkpoint after pass [after], fanned out per
   function (the checks emit no spans, so no capture is needed).  Cost
   is visible in the trace as its own span. *)
let checkpoint pool (options : options) ~(ssa : bool) (after : string)
    (prog : Func.prog) : unit =
  if options.checkpoints then
    Trace.with_span "checkpoint" ~attrs:[ ("after", after) ] @@ fun () ->
    Pool.iter pool (check_func ~ssa prog.Func.vartab) prog.Func.funcs

(* The per-function variant, run inside a promotion task: only [f] is
   in a consistent state while its siblings are mid-flight. *)
let checkpoint_func (options : options) ~(ssa : bool) (after : string) vartab
    (f : Func.t) : unit =
  if options.checkpoints then
    Trace.with_span "checkpoint" ~attrs:[ ("after", after) ] @@ fun () ->
    check_func ~ssa vartab f

(* The MiniC frontend: parse, (optionally) scalar-replace affine array
   references, analyse, lower.  The scalrep rewrite is AST-to-AST and
   introduces new names/statements, so semantic analysis reruns on the
   rewritten program before aliasing and lowering. *)
let frontend ~(options : options) (src : string) :
    Func.prog * Rp_scalrep.Transform.stats option =
  let module Parser = Rp_minic.Parser in
  let module Sema = Rp_minic.Sema in
  let module Alias = Rp_minic.Alias in
  Trace.with_span "frontend.compile" @@ fun () ->
  if not options.scalrep then
    (Lower.compile ~opt_singleton_deref:options.singleton_deref src, None)
  else
    let ast = Parser.parse_program src in
    let sema0 = Sema.analyse ast in
    let ast', st =
      Trace.with_span "frontend.scalrep" (fun () ->
          Rp_scalrep.Transform.program sema0)
    in
    let sema = Sema.analyse ast' in
    let alias = Alias.analyse sema in
    ( Lower.lower ~opt_singleton_deref:options.singleton_deref sema alias,
      Some st )

(* Compile and normalise, build SSA, clean.  Returns the program and
   the interval tree per function. *)
let prepare_in pool ~(options : options) (src : string) :
    Func.prog
    * (string * Intervals.tree) list
    * Rp_scalrep.Transform.stats option =
  Trace.with_span "pipeline.prepare" @@ fun () ->
  let prog, srstats = frontend ~options src in
  checkpoint pool options ~ssa:false "frontend.compile" prog;
  let trees =
    Trace.with_span "normalise" (fun () ->
        par_funcs pool
          (fun (f : Func.t) -> (f.Func.fname, Intervals.normalise f))
          prog.Func.funcs)
  in
  checkpoint pool options ~ssa:false "normalise" prog;
  Trace.with_span "construct_ssa" (fun () ->
      par_iter_funcs pool
        (Construct.run
           ~engine:(construct_engine options.promote.Promote.engine))
        prog.Func.funcs);
  Trace.with_span "verify_ssa" (fun () ->
      par_iter_funcs pool (Verify.assert_ok prog.Func.vartab) prog.Func.funcs);
  Trace.with_span "cleanup" (fun () ->
      par_iter_funcs pool Rp_opt.Cleanup.run prog.Func.funcs);
  checkpoint pool options ~ssa:true "cleanup" prog;
  record_ir_size prog;
  (prog, trees, srstats)

let prepare ?(options = default_options) (src : string) :
    Func.prog * (string * Intervals.tree) list =
  Pool.with_pool ~jobs:options.jobs @@ fun pool ->
  let prog, trees, _ = prepare_in pool ~options src in
  (prog, trees)

(* A compiled execution image for one of the two bytecode engines; the
   tree-walking oracle needs none. *)
type image = Iflat of Decode.t | Ireg of Rcompile.t

(* Attach a profile: run the program and feed back measured counts, or
   fall back to the static estimator for functions never executed.
   Serial on purpose: the interpreter executes the whole program
   against global memory.  With [?decoded] the run uses the matching
   bytecode engine on the given image (which must be current for
   [prog]); otherwise the tree-walking oracle. *)
let attach_profile ?(options = default_options) ?decoded ?run_done
    (prog : Func.prog) (trees : (string * Intervals.tree) list) : Interp.result
    =
  Trace.with_span "pipeline.attach_profile" @@ fun () ->
  let r =
    Trace.with_span "profile.run" (fun () ->
        match decoded with
        | Some (Iflat d) -> Engine.run ~fuel:options.fuel d
        | Some (Ireg c) -> Rengine.run ~fuel:options.fuel c
        | None -> Interp.run ~fuel:options.fuel prog)
  in
  (match run_done with Some t -> t := Trace.wall_s () | None -> ());
  Trace.with_span "profile.apply" (fun () ->
      match options.profile with
      | Measured ->
          Interp.apply_profile prog r;
          (* unexecuted functions keep a static estimate *)
          List.iter
            (fun (f : Func.t) ->
              if not (Freq.has_profile f) then
                match List.assoc_opt f.Func.fname trees with
                | Some tree -> Freq.estimate f tree
                | None -> ())
            prog.Func.funcs
      | Static_estimate ->
          List.iter
            (fun (f : Func.t) ->
              match List.assoc_opt f.Func.fname trees with
              | Some tree -> Freq.estimate f tree
              | None -> ())
            prog.Func.funcs);
  r

let record_counts_metrics ~static_before ~static_after
    ~(dynamic_before : Interp.counters) ~(dynamic_after : Interp.counters) =
  List.iter
    (fun (k, v) ->
      Metrics.set_gauge ("static." ^ k ^ "_before") (float_of_int v))
    (Stats.to_alist static_before);
  List.iter
    (fun (k, v) ->
      Metrics.set_gauge ("static." ^ k ^ "_after") (float_of_int v))
    (Stats.to_alist static_after);
  Metrics.set_gauge "dynamic.loads_before"
    (float_of_int dynamic_before.Interp.loads);
  Metrics.set_gauge "dynamic.stores_before"
    (float_of_int dynamic_before.Interp.stores);
  Metrics.set_gauge "dynamic.loads_after"
    (float_of_int dynamic_after.Interp.loads);
  Metrics.set_gauge "dynamic.stores_after"
    (float_of_int dynamic_after.Interp.stores)

(* The promotion fan-out: one task per function, results in program
   order.  Each task also runs its own checkpoint — only its function
   is in a consistent state while siblings are mid-flight. *)
let promote_prog_in pool ~(options : options) (prog : Func.prog)
    (trees : (string * Intervals.tree) list) :
    (string * Promote.stats) list =
  let cfg = effective_promote options in
  Trace.with_span "promote" (fun () ->
      par_funcs pool
        (fun (f : Func.t) ->
          match List.assoc_opt f.Func.fname trees with
          | Some tree ->
              let s =
                Promote.promote_function ~cfg f prog.Func.vartab tree
              in
              checkpoint_func options ~ssa:true
                ("promote:" ^ f.Func.fname)
                prog.Func.vartab f;
              Some (f.Func.fname, s)
          | None -> None)
        prog.Func.funcs
      |> List.filter_map Fun.id)

(* The Table 3 measurement: colors / MAXLIVE / spills-at-budget per
   function, from one interference build each, fanned out over the
   pool.  Runs twice per pipeline (before promotion and after
   finalisation); [k] is the effective register budget. *)
let measure_pressure pool ~(when_ : string) ~(k : int option)
    (prog : Func.prog) : (string * Rp_regalloc.Color.summary) list =
  Trace.with_span "pressure" ~attrs:[ ("when", when_) ] @@ fun () ->
  par_funcs pool
    (fun (f : Func.t) -> (f.Func.fname, Rp_regalloc.Color.analyse f ~k))
    prog.Func.funcs

let zip_pressure before after : func_pressure list =
  List.map2
    (fun (n, b) (n', a) ->
      assert (String.equal n n');
      { fp_name = n; fp_before = b; fp_after = a })
    before after

(* Post-promotion finalisation: verify, clean, verify again.  Under
   [options.scalrep] the cleanup bundle gains memory-SSA dead-store
   elimination: once promotion has replaced every cell load with a
   register read, the rotation stores at the loop latch feed nothing
   but their own memory phis, and the DSE cascade erases the whole
   chain.  It stays off otherwise so default-flag reports are
   byte-identical with earlier schema versions' output. *)
let finalise_in pool ~(options : options) (prog : Func.prog) : unit =
  Trace.with_span "verify_ssa" (fun () ->
      par_iter_funcs pool (Verify.assert_ok prog.Func.vartab) prog.Func.funcs);
  Trace.with_span "cleanup" (fun () ->
      par_iter_funcs pool
        (fun f ->
          Rp_opt.Cleanup.run f;
          if options.scalrep then begin
            ignore (Rp_opt.Dse.run f);
            Rp_opt.Cleanup.run f
          end)
        prog.Func.funcs);
  Trace.with_span "verify_ssa" (fun () ->
      par_iter_funcs pool (Verify.assert_ok prog.Func.vartab) prog.Func.funcs);
  record_ir_size prog

(* Full pipeline on a MiniC source string. *)
let run ?(options = default_options) (src : string) : report =
  if options.trace && not (Trace.enabled ()) then
    Trace.set_sink Trace.Collect;
  Pool.with_pool ~jobs:options.jobs @@ fun pool ->
  Trace.with_span "pipeline.run" @@ fun () ->
  let ms t0 t1 = (t1 -. t0) *. 1000.0 in
  (* each phase boundary reads the wall clock and the main domain's
     allocation clock; both zero out under the deterministic flag *)
  let t0 = Trace.wall_s () and a0 = Trace.alloc_words () in
  let prog, trees, scalrep_stats = prepare_in pool ~options src in
  let t_prepared = Trace.wall_s () and a_prepared = Trace.alloc_words () in
  (* Decode once for the flat engine; the image is refreshed (in the
     same buffers) after promotion rewrites the IR, so both runs share
     one layout, one set of interned names and one activation pool.
     The span is emitted under both engines — the trace must have the
     same shape whichever interpreter runs. *)
  let decoded =
    Trace.with_span "profile.decode" (fun () ->
        match options.interp with
        | Flat -> Some (Iflat (Decode.decode prog))
        | Reg ->
            Some
              (Ireg (Rcompile.compile ?budget:(effective_regs options) prog))
        | Fused ->
            Some
              (Ireg
                 (Rcompile.compile
                    ?budget:(effective_regs options)
                    ~fuse:true prog))
        | Tree -> None)
  in
  let t_pdecoded = Trace.wall_s () in
  let t_prun = ref 0.0 in
  let baseline = attach_profile ~options ?decoded ~run_done:t_prun prog trees in
  let t_profiled = Trace.wall_s () and a_profiled = Trace.alloc_words () in
  let static_before = Stats.of_prog prog in
  let k = effective_regs options in
  let pressure_before = measure_pressure pool ~when_:"before" ~k prog in
  let t_pressure_b = Trace.wall_s () in
  let per_function = promote_prog_in pool ~options prog trees in
  let stats = Promote.empty_stats () in
  List.iter (fun (_, s) -> Promote.accumulate stats s) per_function;
  let t_promoted = Trace.wall_s () and a_promoted = Trace.alloc_words () in
  finalise_in pool ~options prog;
  let static_after = Stats.of_prog prog in
  let t_finalised = Trace.wall_s () and a_finalised = Trace.alloc_words () in
  let pressure_after = measure_pressure pool ~when_:"after" ~k prog in
  let t_pressure_a = Trace.wall_s () in
  Trace.with_span "measure.decode" (fun () ->
      match decoded with
      | Some (Iflat d) -> Decode.refresh d
      | Some (Ireg c) -> Rcompile.refresh c
      | None -> ());
  let t_mdecoded = Trace.wall_s () in
  let final =
    Trace.with_span "measure.run" (fun () ->
        match decoded with
        | Some (Iflat d) -> Engine.run ~fuel:options.fuel d
        | Some (Ireg c) -> Rengine.run ~fuel:options.fuel c
        | None -> Interp.run ~fuel:options.fuel prog)
  in
  let t_measured = Trace.wall_s () and a_measured = Trace.alloc_words () in
  let alloc name a b =
    let words = b -. a in
    Metrics.set_gauge ("alloc." ^ name ^ ".minor_words") words;
    (name ^ "_minor_words", words)
  in
  record_counts_metrics ~static_before ~static_after
    ~dynamic_before:baseline.Interp.counters
    ~dynamic_after:final.Interp.counters;
  (* peephole-fusion statistics of the post-promotion image.  Emitted
     under every engine (0 when fusion is off or inapplicable) and
     zeroed under the deterministic flag, like the wall-clock and
     allocation entries, so report bytes stay engine-independent. *)
  let fused_ops, ops_eliminated =
    if Trace.deterministic () then (0.0, 0.0)
    else
      match decoded with
      | Some (Ireg c) when c.Rcompile.fuse ->
          ( float_of_int c.Rcompile.rfused_ops,
            float_of_int c.Rcompile.rops_eliminated )
      | _ -> (0.0, 0.0)
  in
  {
    prog;
    trees;
    static_before;
    static_after;
    dynamic_before = baseline.Interp.counters;
    dynamic_after = final.Interp.counters;
    promote_stats = stats;
    per_function;
    behaviour_ok = Interp.same_behaviour baseline final;
    baseline;
    final;
    pressure = zip_pressure pressure_before pressure_after;
    pressure_regs = k;
    scalrep_stats;
    timing =
      [
        ("prepare_ms", ms t0 t_prepared);
        ("profile_ms", ms t_prepared t_profiled);
        (* decode/execute split of the two interpreter phases; the
           decode components are 0 under the tree-walking oracle.
           [profile_exec_ms] is the engine run alone — the profile
           feedback ([profile.apply]: count attachment plus static
           estimation of unexecuted functions) is engine-independent
           bookkeeping and reports separately, so the exec numbers
           compare engines and nothing else. *)
        ("profile_decode_ms", ms t_prepared t_pdecoded);
        ("profile_exec_ms", ms t_pdecoded !t_prun);
        ("profile_apply_ms", ms !t_prun t_profiled);
        (* both interference-analysis passes (before + after) *)
        ( "pressure_ms",
          ms t_profiled t_pressure_b +. ms t_finalised t_pressure_a );
        ("promote_ms", ms t_pressure_b t_promoted);
        ("finalise_ms", ms t_promoted t_finalised);
        ("measure_ms", ms t_pressure_a t_measured);
        ("measure_decode_ms", ms t_pressure_a t_mdecoded);
        ("measure_exec_ms", ms t_mdecoded t_measured);
        ("total_ms", ms t0 t_measured);
        ("fused_ops", fused_ops);
        ("ops_eliminated", ops_eliminated);
        alloc "prepare" a0 a_prepared;
        alloc "profile" a_prepared a_profiled;
        alloc "promote" a_profiled a_promoted;
        alloc "finalise" a_promoted a_finalised;
        alloc "measure" a_finalised a_measured;
        alloc "total" a0 a_measured;
      ];
  }

(* Compile-only pipeline: everything [run] does except the interpreter
   runs — the profile is the static loop-depth estimate, and there is
   no baseline/measurement/oracle.  This is the path whose wall-clock
   scales with [options.jobs]; the scaling benchmark times it. *)
let optimise ?(options = default_options) (src : string) :
    Func.prog * (string * Promote.stats) list =
  Pool.with_pool ~jobs:options.jobs @@ fun pool ->
  Trace.with_span "pipeline.optimise" @@ fun () ->
  let prog, trees, _ = prepare_in pool ~options src in
  Trace.with_span "profile.estimate" (fun () ->
      par_iter_funcs pool
        (fun (f : Func.t) ->
          match List.assoc_opt f.Func.fname trees with
          | Some tree -> Freq.estimate f tree
          | None -> ())
        prog.Func.funcs);
  let per_function = promote_prog_in pool ~options prog trees in
  finalise_in pool ~options prog;
  (prog, per_function)

(* ------------------------------------------------------------------ *)
(* JSON serialisation (report schema v5; see DESIGN.md) *)

let counts_json (c : Stats.counts) : J.t =
  J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Stats.to_alist c))

let counters_json (c : Interp.counters) : J.t =
  J.Obj
    [
      ("loads", J.Int c.Interp.loads);
      ("stores", J.Int c.Interp.stores);
      ("aliased_loads", J.Int c.Interp.aliased_loads);
      ("aliased_stores", J.Int c.Interp.aliased_stores);
      ("instrs", J.Int c.Interp.instrs);
    ]

let stats_json (s : Promote.stats) : J.t =
  J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Promote.to_alist s))

(* The schema-v4 pressure section (the paper's Table 3): per function
   and program-wide, colors / MAXLIVE / spills-at-budget before and
   after promotion, plus the per-cause web admission counts.  Colors
   and spills aggregate by sum (registers are per-function), MAXLIVE by
   max. *)
let pressure_json (r : report) : J.t =
  let opt_int = function Some v -> J.Int v | None -> J.Null in
  let summary_fields prefix (s : Rp_regalloc.Color.summary) =
    [
      ("colors_" ^ prefix, J.Int s.Rp_regalloc.Color.s_colors);
      ("maxlive_" ^ prefix, J.Int s.Rp_regalloc.Color.s_maxlive);
      ("spills_" ^ prefix, opt_int s.Rp_regalloc.Color.s_spills);
    ]
  in
  let sum get = List.fold_left (fun acc fp -> acc + get fp) 0 r.pressure in
  let top get = List.fold_left (fun acc fp -> max acc (get fp)) 0 r.pressure in
  let spill_sum get =
    Option.map
      (fun _ -> sum (fun fp -> Option.value (get fp) ~default:0))
      r.pressure_regs
  in
  let s = r.promote_stats in
  J.Obj
    [
      ("regs", opt_int r.pressure_regs);
      ( "program",
        J.Obj
          ([
             ( "colors_before",
               J.Int (sum (fun fp -> fp.fp_before.Rp_regalloc.Color.s_colors))
             );
             ( "colors_after",
               J.Int (sum (fun fp -> fp.fp_after.Rp_regalloc.Color.s_colors))
             );
             ( "maxlive_before",
               J.Int (top (fun fp -> fp.fp_before.Rp_regalloc.Color.s_maxlive))
             );
             ( "maxlive_after",
               J.Int (top (fun fp -> fp.fp_after.Rp_regalloc.Color.s_maxlive))
             );
             ( "spills_before",
               opt_int
                 (spill_sum (fun fp -> fp.fp_before.Rp_regalloc.Color.s_spills))
             );
             ( "spills_after",
               opt_int
                 (spill_sum (fun fp -> fp.fp_after.Rp_regalloc.Color.s_spills))
             );
           ]
          @ [
              ( "webs",
                J.Obj
                  [
                    ("promoted", J.Int s.Promote.webs_promoted);
                    ("blocked_profit", J.Int s.Promote.webs_skipped_profit);
                    ("blocked_pressure", J.Int s.Promote.webs_skipped_pressure);
                    ( "blocked_malformed",
                      J.Int s.Promote.webs_skipped_malformed );
                  ] );
            ]) );
      ( "functions",
        J.Arr
          (List.map
             (fun fp ->
               J.Obj
                 (("name", J.Str fp.fp_name)
                 :: (summary_fields "before" fp.fp_before
                    @ summary_fields "after" fp.fp_after)))
             r.pressure) );
    ]

(* The schema-v5 scalrep section: whether the pre-lowering scalar
   replacement of array references ran, and what it did. *)
let scalrep_json (r : report) : J.t =
  match r.scalrep_stats with
  | None -> J.Obj [ ("enabled", J.Bool false) ]
  | Some s ->
      let module T = Rp_scalrep.Transform in
      J.Obj
        [
          ("enabled", J.Bool true);
          ("loops_seen", J.Int s.T.loops_seen);
          ("loops_transformed", J.Int s.T.loops_transformed);
          ("groups_induction", J.Int s.T.groups_induction);
          ("groups_invariant", J.Int s.T.groups_invariant);
          ("cells_carved", J.Int s.T.cells_carved);
          ( "skipped",
            J.Obj
              [
                ("loop_shape", J.Int s.T.skip_loop_shape);
                ("body_unsafe", J.Int s.T.skip_body_unsafe);
                ("no_candidates", J.Int s.T.skip_no_candidates);
                ("arrays_dropped", J.Int s.T.arrays_dropped);
              ] );
        ]

let json_report ?label (r : report) : J.t =
  let impro before after = J.Float (Stats.improvement ~before ~after) in
  Rp_obs.Report.make ~tool:"rpromote" ~timing:r.timing
    ((match label with Some l -> [ ("source", J.Str l) ] | None -> [])
    @ [
        ("behaviour_ok", J.Bool r.behaviour_ok);
        ( "static",
          J.Obj
            [
              ("before", counts_json r.static_before);
              ("after", counts_json r.static_after);
              ( "improvement_pct",
                J.Obj
                  [
                    ( "loads",
                      impro r.static_before.Stats.loads
                        r.static_after.Stats.loads );
                    ( "stores",
                      impro r.static_before.Stats.stores
                        r.static_after.Stats.stores );
                  ] );
            ] );
        ( "dynamic",
          J.Obj
            [
              ("before", counters_json r.dynamic_before);
              ("after", counters_json r.dynamic_after);
              ( "improvement_pct",
                J.Obj
                  [
                    ( "loads",
                      impro r.dynamic_before.Interp.loads
                        r.dynamic_after.Interp.loads );
                    ( "stores",
                      impro r.dynamic_before.Interp.stores
                        r.dynamic_after.Interp.stores );
                  ] );
            ] );
        ("promotion", stats_json r.promote_stats);
        ("pressure", pressure_json r);
        ("scalrep", scalrep_json r);
        ( "functions",
          J.Arr
            (List.map
               (fun (name, s) ->
                 J.Obj [ ("name", J.Str name); ("promotion", stats_json s) ])
               r.per_function) );
      ])

(* One-shot-equivalent run: what a fresh CLI process would produce.
   The global observability state (trace sink and collection, metrics
   registry, deterministic flag) is reset before and after, so a
   long-lived caller gets the same bytes as [rpromote promote --json]
   — provided it serialises calls, which the compile service does. *)
let run_fresh_json ?label ?(deterministic = false) ~options (src : string) :
    report * string =
  let prev_sink = Trace.sink () and prev_det = Trace.deterministic () in
  Trace.set_sink (if options.trace then Trace.Collect else Trace.Off);
  Trace.reset ();
  Metrics.reset ();
  Trace.set_deterministic deterministic;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_deterministic prev_det;
      Trace.set_sink prev_sink;
      Trace.reset ();
      Metrics.reset ())
    (fun () ->
      let r = run ~options src in
      (r, J.to_string (json_report ?label r)))
