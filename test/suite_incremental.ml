(* Tests for the incremental SSA updater — including an exact
   reproduction of the paper's Example 2 (Figures 9 and 10). *)

open Rp_ir
open Rp_ssa

let res v n = { Resource.base = v; ver = n }

(* Build the paper's Example 2 CFG:

     b0 (entry) -> b1
     b1 -> b2, b3         x0 defined in b1
     b2 -> b4, b5         (critical edge b2->b5 deliberately unsplit,
     b3 -> b5              exactly as in the paper's figure)
     b4 -> b6             uses of x0 in b3, b4, b5
     b5 -> b6
     b6 -> b1, b7         back edge: the six blocks form an interval

   Returns (prog, f, use instructions in b3/b4/b5, the x0 store). *)
let build_example2 () =
  let prog = Func.create_prog () in
  let x = Resource.add_var prog.Func.vartab ~name:"x" ~kind:Resource.Global ~init:0 in
  let f = Func.create_func ~name:"ex2" in
  Func.add_func prog f;
  let cond = Func.fresh_reg ~name:"c" f in
  f.Func.params <- [ cond ];
  let b = Array.init 8 (fun _ -> Func.add_block f) in
  f.Func.entry <- b.(0).Block.bid;
  let jmp i j = b.(i).Block.term <- Block.Jmp b.(j).Block.bid in
  let br i j k =
    b.(i).Block.term <-
      Block.Br { cond = Instr.Reg cond; t = b.(j).Block.bid; f = b.(k).Block.bid }
  in
  jmp 0 1;
  br 1 2 3;
  br 2 4 5;
  jmp 3 5;
  jmp 4 6;
  jmp 5 6;
  br 6 1 7;
  b.(7).Block.term <- Block.Ret None;
  (* x0 (version 1 here) defined in b1; loads in b3, b4, b5 *)
  ignore (Hashtbl.replace f.Func.mver x 1);
  let store_x0 = Func.mk_instr f (Instr.Store { dst = res x 1; src = Imm 7 }) in
  Block.insert_at_end b.(1) store_x0;
  let mk_load () =
    Func.mk_instr f (Instr.Load { dst = Func.fresh_reg f; src = res x 1 })
  in
  let u3 = mk_load () and u4 = mk_load () and u5 = mk_load () in
  Block.insert_at_end b.(3) u3;
  Block.insert_at_end b.(4) u4;
  Block.insert_at_end b.(5) u5;
  Cfg.recompute_preds f;
  Verify.assert_ok prog.Func.vartab f;
  (prog, f, x, (u3, u4, u5), store_x0)

let load_res (i : Instr.t) =
  match i.Instr.op with
  | Instr.Load { src; _ } -> src
  | _ -> Alcotest.fail "not a load"

let run_example2 engine =
  let prog, f, x, (u3, u4, u5), store_x0 = build_example2 () in
  (* promotion clones two stores: one in b2, one in b3 (before the
     use), per the paper's scenario *)
  let clone2 = Func.fresh_ver f x in
  let clone3 = Func.fresh_ver f x in
  Block.insert_at_start (Func.block f 2)
    (Func.mk_instr f (Instr.Store { dst = clone2; src = Imm 7 }));
  Block.insert_before (Func.block f 3) ~iid:u3.Instr.iid
    (Func.mk_instr f (Instr.Store { dst = clone3; src = Imm 7 }));
  Incremental.update_for_cloned_resources ~engine f
    ~cloned_res:(Resource.ResSet.of_list [ clone2; clone3 ]);
  Verify.assert_ok prog.Func.vartab f;
  (prog, f, x, (u3, u4, u5), store_x0, clone2, clone3)

let test_example2 engine () =
  let _prog, f, x, (u3, u4, u5), store_x0, clone2, clone3 =
    run_example2 engine
  in
  (* "the use at b3 is renamed x2" (the clone in b3) *)
  Alcotest.(check bool) "b3 use renamed to b3 clone" true
    (Resource.equal (load_res u3) clone3);
  (* "the use at b4 renamed x1" (the clone in b2) *)
  Alcotest.(check bool) "b4 use renamed to b2 clone" true
    (Resource.equal (load_res u4) clone2);
  (* "the use at b5 renamed x3" — the target of a new phi at b5 joining
     the two clones *)
  let b5 = Func.block f 5 in
  (match Iseq.to_list b5.Block.phis with
  | [ { Instr.op = Instr.Mphi { dst; srcs }; _ } ] ->
      Alcotest.(check bool) "b5 use is the phi target" true
        (Resource.equal (load_res u5) dst);
      let srcs = List.sort compare srcs in
      Alcotest.(check bool) "phi sources are the two clones" true
        (srcs = List.sort compare [ (2, clone2); (3, clone3) ])
  | _ -> Alcotest.fail "expected exactly one memory phi at b5");
  (* "the phi instruction at b6 is dead and can be eliminated"; same
     for the phi at b1 (x5), and x0's original definition *)
  Alcotest.(check (list int)) "no phi at b6" []
    (List.map
       (fun (i : Instr.t) -> i.Instr.iid)
       (Iseq.to_list (Func.block f 6).Block.phis));
  Alcotest.(check (list int)) "no phi at b1" []
    (List.map
       (fun (i : Instr.t) -> i.Instr.iid)
       (Iseq.to_list (Func.block f 1).Block.phis));
  Alcotest.(check bool) "dead x0 store deleted" true
    (Block.find_instr (Func.block f 1) ~iid:store_x0.Instr.iid = None);
  ignore x

(* When the original definition still has a use the updater must keep
   it: drop the b3 clone so the b3 use keeps reaching x0. *)
let test_example2_store_stays_live () =
  let prog, f, x, (u3, u4, u5), store_x0 = build_example2 () in
  let clone2 = Func.fresh_ver f x in
  Block.insert_at_start (Func.block f 2)
    (Func.mk_instr f (Instr.Store { dst = clone2; src = Imm 7 }));
  Incremental.update_for_cloned_resources f
    ~cloned_res:(Resource.ResSet.singleton clone2);
  Verify.assert_ok prog.Func.vartab f;
  (* b3's use still reads x0, so the store in b1 must survive *)
  Alcotest.(check bool) "x0 store kept" true
    (Block.find_instr (Func.block f 1) ~iid:store_x0.Instr.iid <> None);
  Alcotest.(check bool) "b3 use unchanged" true
    (Resource.equal (load_res u3) (res x 1));
  Alcotest.(check bool) "b4 use renamed" true
    (Resource.equal (load_res u4) clone2);
  (* b5 joins x0 (via b3) and the clone (via b2) *)
  match Iseq.to_list (Func.block f 5).Block.phis with
  | [ { Instr.op = Instr.Mphi { dst; srcs }; _ } ] ->
      Alcotest.(check bool) "b5 use is phi target" true
        (Resource.equal (load_res u5) dst);
      Alcotest.(check bool) "phi joins clone and x0" true
        (List.sort compare srcs
        = List.sort compare [ (2, clone2); (3, res x 1) ])
  | _ -> Alcotest.fail "expected one memory phi at b5"

(* The per-definition baseline must compute the same final SSA form. *)
let test_per_def_equivalent () =
  let run_with update =
    let _prog, _f, x, (u3, u4, u5), _store, clone2, clone3 =
      let prog, f, x, us, store_x0 = build_example2 () in
      let clone2 = Func.fresh_ver f x in
      let clone3 = Func.fresh_ver f x in
      let u3, _, _ = us in
      Block.insert_at_start (Func.block f 2)
        (Func.mk_instr f (Instr.Store { dst = clone2; src = Imm 7 }));
      Block.insert_before (Func.block f 3) ~iid:u3.Instr.iid
        (Func.mk_instr f (Instr.Store { dst = clone3; src = Imm 7 }));
      update f (Resource.ResSet.of_list [ clone2; clone3 ]);
      Verify.assert_ok prog.Func.vartab f;
      (prog, f, x, us, store_x0, clone2, clone3)
    in
    ignore clone3;
    ignore clone2;
    ignore x;
    (* summarise: the resources each use ends at *)
    (load_res u3, load_res u4, (load_res u5).Resource.base)
  in
  let batch =
    run_with (fun f cloned -> Incremental.update_for_cloned_resources f ~cloned_res:cloned)
  in
  let per_def =
    run_with (fun f cloned -> Per_def_update.update_one_at_a_time f ~cloned_res:cloned)
  in
  Alcotest.(check bool) "same renaming" true (batch = per_def)

(* Using the updater as a general tool: clone a definition into a
   straight-line successor and check the simple renaming. *)
let test_straightline_clone () =
  let prog = Func.create_prog () in
  let x = Resource.add_var prog.Func.vartab ~name:"x" ~kind:Resource.Global ~init:0 in
  let f = Func.create_func ~name:"s" in
  Func.add_func prog f;
  let b0 = Func.add_block f and b1 = Func.add_block f in
  f.Func.entry <- b0.Block.bid;
  b0.Block.term <- Block.Jmp b1.Block.bid;
  b1.Block.term <- Block.Ret None;
  Hashtbl.replace f.Func.mver x 1;
  Block.insert_at_end b0 (Func.mk_instr f (Instr.Store { dst = res x 1; src = Imm 1 }));
  let u = Func.mk_instr f (Instr.Load { dst = Func.fresh_reg f; src = res x 1 }) in
  Block.insert_at_end b1 u;
  Cfg.recompute_preds f;
  let clone = Func.fresh_ver f x in
  Block.insert_at_start b1 (Func.mk_instr f (Instr.Store { dst = clone; src = Imm 2 }));
  Incremental.update_for_cloned_resources f ~cloned_res:(Resource.ResSet.singleton clone);
  Verify.assert_ok prog.Func.vartab f;
  Alcotest.(check bool) "use renamed to clone" true
    (Resource.equal (load_res u) clone);
  (* original store is dead now *)
  Alcotest.(check int) "b0 store removed" 0 (Iseq.length b0.Block.body)

let test_empty_cloned_set () =
  let prog, f, _, _, _ = build_example2 () in
  Incremental.update_for_cloned_resources f ~cloned_res:Resource.ResSet.empty;
  Verify.assert_ok prog.Func.vartab f

let suite =
  [
    Alcotest.test_case "paper example 2 (Cytron IDF)" `Quick
      (test_example2 Incremental.Cytron);
    Alcotest.test_case "paper example 2 (Sreedhar-Gao IDF)" `Quick
      (test_example2 Incremental.Sreedhar_gao);
    Alcotest.test_case "live original definition kept" `Quick
      test_example2_store_stays_live;
    Alcotest.test_case "per-def baseline equivalent" `Quick test_per_def_equivalent;
    Alcotest.test_case "straight-line clone" `Quick test_straightline_clone;
    Alcotest.test_case "empty cloned set" `Quick test_empty_cloned_set;
  ]
