(** Hand-written lexer for MiniC; supports [//] and C block comments. *)

exception Error of string
(** Message carries ["line:col: description"]. *)

val tokenize : string -> Token.spanned list
(** @raise Error on malformed input; the token list ends with [EOF]. *)
