(** Lowering MiniC to the IR, with the paper's memory placement:
    global scalars/pointers and struct fields become memory variables,
    arrays become aggregate variables, address-taken locals become
    address-exposed memory variables, all other locals become virtual
    registers. Calls and dereferences become aliased operations
    carrying may-def/may-use sets from {!Alias}; every return is
    preceded by an [Exit_use] of all program-lifetime variables. *)

exception Error of string

(** [lower sema alias] produces the IR program.
    [opt_singleton_deref]: lower a dereference whose points-to set is a
    single scalar as a singleton access (strong update) instead of an
    aliased one; off by default to keep the paper's model. *)
val lower : ?opt_singleton_deref:bool -> Sema.t -> Alias.t -> Rp_ir.Func.prog

(** Parse, check, analyse and lower a source string.
    @raise Lexer.Error | Parser.Error | Sema.Error | Error *)
val compile : ?opt_singleton_deref:bool -> string -> Rp_ir.Func.prog
