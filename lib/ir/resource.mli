(** Memory variables and singleton memory resources (paper section 3).

    A {e memory variable} is a named location the compiler knows about;
    a {e singleton memory resource} is an SSA name for one: the pair of
    the base variable and an SSA version. Version 0 means "not yet
    renamed". The paper's aggregate resources are represented as the
    per-instruction lists of singleton resources an aliased operation
    may define or use (see {!Instr}). *)

type var_kind =
  | Global  (** file-scope scalar variable *)
  | Addr_local of string  (** address-exposed local scalar; owner function *)
  | Struct_field of string * string
      (** scalar field of a global struct: (struct var name, field name) *)
  | Array of int  (** aggregate array variable; never promoted *)
  | Heap  (** the anonymous heap; never promoted *)
  | Elem of string
      (** scalar-replacement cell carved from an array element (scalrep
          pass); owner function. Promotable like an address-exposed
          local. *)

type var = {
  vid : Ids.vid;
  vname : string;
  vkind : var_kind;
  vinit : int;  (** initial value for scalars; 0 for aggregates *)
}

(** A singleton memory resource: base variable + SSA version. *)
type t = { base : Ids.vid; ver : int }

val compare : t -> t -> int

val equal : t -> t -> bool

(** The version-0 (pre-SSA) resource of a variable. *)
val unversioned : Ids.vid -> t

(** Is this kind of variable a candidate for scalar register promotion?
    The paper promotes global scalars, address-exposed local scalars,
    and scalar components of structure variables. *)
val promotable_kind : var_kind -> bool

module ResMap : Map.S with type key = t

module ResSet : Set.S with type elt = t

(** Program-wide variable table. *)
type table

val create_table : unit -> table

val add_var : table -> name:string -> kind:var_kind -> init:int -> Ids.vid

val var : table -> Ids.vid -> var

val var_name : table -> Ids.vid -> string

val num_vars : table -> int

val iter_vars : (var -> unit) -> table -> unit

(** [promotable tab vid] — see {!promotable_kind}. *)
val promotable : table -> Ids.vid -> bool

val pp_var : table -> Format.formatter -> Ids.vid -> unit

(** Prints [x_3]-style names, or just the variable name at version 0. *)
val pp : table -> Format.formatter -> t -> unit

(** Table-free printer for error paths. *)
val pp_raw : Format.formatter -> t -> unit
