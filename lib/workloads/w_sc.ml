(* "sc" — a spreadsheet recalculation engine echoing SPECInt95's sc.

   Cell recalculation walks the sheet calling an evaluation routine for
   every non-empty cell, so globals are clobbered at high frequency;
   the dirty-tracking scalars between calls are the only promotable
   stretch.  Table 2 shape: small improvement (4.9% loads). *)

let name = "sc"

let description =
  "spreadsheet recalculation; per-cell evaluation calls leave only short \
   promotable stretches"

let source =
  {|
// sc: sheet recalculation with per-cell calls.
int sheet[400];          // 20x20 values
int formula[400];        // 0 = literal, else dependency offset
int dirty = 0;
int recalcs = 0;
int errors = 0;
int cursor = 0;
int stat_min = 0;
int stat_max = 0;
int stat_sum = 0;

int eval_cell(int idx) {
  recalcs++;
  int f = formula[idx];
  if (f == 0) { return sheet[idx]; }
  int src = (idx + f) % 400;
  int v = sheet[src] + f % 9;
  if (v > 10000) {
    errors++;
    v = 10000;
  }
  return v;
}

void setup() {
  int i;
  int v = 3;
  for (i = 0; i < 400; i++) {
    v = (v * 19 + 5) % 83;
    sheet[i] = v;
    if (v % 3 == 0) { formula[i] = v % 7 + 1; }
    else { formula[i] = 0; }
  }
}

// call-free statistics pass over the status-line window: the one
// stretch promotion can use
void refresh_stats() {
  int i;
  stat_min = 100000;
  stat_max = 0 - 100000;
  stat_sum = 0;
  for (i = 0; i < 100; i++) {
    int v = sheet[i];
    if (v < stat_min) { stat_min = v; }
    if (v > stat_max) { stat_max = v; }
    stat_sum = (stat_sum + v) % 65521;
  }
}

int main() {
  int round;
  setup();
  for (round = 0; round < 30; round++) {
    int i;
    dirty = 0;
    for (i = 0; i < 400; i++) {
      cursor = i;                     // hot global, but calls intervene
      int nv = eval_cell(i);          // call in the hot loop
      if (nv != sheet[i]) {
        sheet[i] = nv;
        dirty++;
      }
    }
    if (round % 8 == 0) {
      refresh_stats();
    }
  }
  int sum = 0;
  int j;
  for (j = 0; j < 400; j++) { sum = (sum + sheet[j]) % 65521; }
  print(sum);
  print(dirty);
  print(recalcs);
  print(errors);
  print(cursor);
  print(stat_min);
  print(stat_max);
  print(stat_sum);
  return 0;
}
|}
