(* SSA construction, verification, webs and out-of-SSA tests. *)

open Rp_ir
open Rp_analysis
open Rp_ssa

(* Build, normalise and SSA-convert a MiniC source; return the program. *)
let ssa_of ?(engine = Construct.Cytron) src =
  let prog = Rp_minic.Lower.compile src in
  let trees =
    List.map (fun (f : Func.t) -> (f.Func.fname, Intervals.normalise f)) prog.Func.funcs
  in
  List.iter (Construct.run ~engine) prog.Func.funcs;
  (prog, trees)

let count_instrs pred (f : Func.t) =
  Func.fold_blocks
    (fun acc b ->
      List.fold_left
        (fun acc (i : Instr.t) -> if pred i then acc + 1 else acc)
        acc (Block.instrs b))
    0 f

let is_mphi (i : Instr.t) = Instr.is_mphi i

let is_rphi (i : Instr.t) = Instr.is_rphi i

(* ------------------------------------------------------------------ *)

let simple_loop_src =
  {|
int x = 0;
int main() {
  int i;
  for (i = 0; i < 10; i++) { x = x + i; }
  print(x);
  return 0;
}
|}

let test_construct_verifies () =
  let prog, _ = ssa_of simple_loop_src in
  List.iter (Verify.assert_ok prog.Func.vartab) prog.Func.funcs

let test_construct_loop_phis () =
  let prog, _ = ssa_of simple_loop_src in
  let main = Option.get (Func.find_func prog "main") in
  (* the loop needs a memory phi for x and a register phi for i *)
  Alcotest.(check bool) "has memory phi" true (count_instrs is_mphi main >= 1);
  Alcotest.(check bool) "has register phi" true (count_instrs is_rphi main >= 1)

let test_construct_pruned () =
  (* x is defined in both branches but dead after the join: pruned SSA
     places no phi for a dead variable; i is live and gets one *)
  let src =
    {|
int main() {
  int x = 0;
  int i = 0;
  if (i < 1) { x = 1; } else { x = 2; }
  i = i + x;
  int y = 3;
  if (i < 10) { y = 4; } else { y = 5; }
  print(i);
  return 0;
}
|}
  in
  let prog, _ = ssa_of src in
  let main = Option.get (Func.find_func prog "main") in
  Verify.assert_ok prog.Func.vartab main;
  (* y is dead after the second diamond: its phi must have been pruned *)
  let phis = count_instrs is_rphi main in
  (* exactly one live join (for x feeding i); i itself is straight-line *)
  Alcotest.(check int) "pruned phi count" 1 phis

let test_versions_positive () =
  let prog, _ = ssa_of simple_loop_src in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_blocks
        (fun b ->
          Block.iter_instrs
            (fun i ->
              List.iter
                (fun (r : Resource.t) ->
                  Alcotest.(check bool) "version > 0" true (r.ver > 0))
                (Instr.mem_uses i.op @ Instr.mem_defs i.op))
            b)
        f)
    prog.Func.funcs

let test_construct_sreedhar_gao_agrees () =
  (* both IDF engines must produce verifying SSA with the same number
     of phis *)
  let prog1, _ = ssa_of ~engine:Construct.Cytron simple_loop_src in
  let prog2, _ = ssa_of ~engine:Construct.Sreedhar_gao simple_loop_src in
  List.iter2
    (fun (f1 : Func.t) (f2 : Func.t) ->
      Verify.assert_ok prog1.Func.vartab f1;
      Verify.assert_ok prog2.Func.vartab f2;
      Alcotest.(check int)
        (f1.Func.fname ^ ": same phi count")
        (count_instrs Instr.is_phi f1)
        (count_instrs Instr.is_phi f2))
    prog1.Func.funcs prog2.Func.funcs

let test_aliased_defs_get_versions () =
  let src =
    {|
int g = 1;
void f() { g = g + 1; }
int main() {
  f();
  print(g);
  return 0;
}
|}
  in
  let prog, _ = ssa_of src in
  let main = Option.get (Func.find_func prog "main") in
  (* the call must define a fresh version of g and use the entry one *)
  let found = ref false in
  Func.iter_blocks
    (fun b ->
      Iseq.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call { mdefs; muses; _ } ->
              found := true;
              List.iter2
                (fun (d : Resource.t) (u : Resource.t) ->
                  Alcotest.(check bool) "def is a new version" true (d.ver > u.ver))
                mdefs muses
          | _ -> ())
        b.Block.body)
    main;
  Alcotest.(check bool) "call found" true !found

(* ------------------------------------------------------------------ *)
(* Webs *)

let test_webs_fig_calls () =
  (* the paper's example from 4.2: x = ..; foo(); bar(); gives three
     webs for x, because each call starts a new name *)
  let src =
    {|
int x = 0;
void foo() { x = x + 1; }
void bar() { x = x * 2; }
int main() {
  x = 5;
  foo();
  bar();
  print(x);
  return 0;
}
|}
  in
  let prog, _ = ssa_of src in
  let main = Option.get (Func.find_func prog "main") in
  let blocks =
    Func.fold_blocks
      (fun acc b -> Ids.IntSet.add b.Block.bid acc)
      Ids.IntSet.empty main
  in
  let webs = Webs.in_blocks prog.Func.vartab main blocks in
  (* x has: entry version + store version + foo's def + bar's def;
     no phis in straight-line code, so each is its own web *)
  let x_webs =
    List.filter
      (fun w -> List.exists (fun (r : Resource.t) -> r.base = 0) w)
      webs
  in
  Alcotest.(check bool) "several independent webs" true (List.length x_webs >= 3);
  List.iter
    (fun w -> Alcotest.(check int) "singleton web" 1 (List.length w))
    x_webs

let test_webs_join_phis () =
  let prog, _ = ssa_of simple_loop_src in
  let main = Option.get (Func.find_func prog "main") in
  let blocks =
    Func.fold_blocks
      (fun acc b -> Ids.IntSet.add b.Block.bid acc)
      Ids.IntSet.empty main
  in
  let webs = Webs.in_blocks prog.Func.vartab main blocks in
  (* in the loop, x's entry version, phi version and store version are
     all connected into one web *)
  let x_web =
    List.find
      (fun w -> List.exists (fun (r : Resource.t) -> r.base = 0) w)
      webs
  in
  Alcotest.(check bool) "web joins versions" true (List.length x_web >= 3)

let test_webs_exclude_arrays () =
  let src =
    {|
int a[4];
int main() {
  a[0] = 1;
  print(a[0]);
  return 0;
}
|}
  in
  let prog, _ = ssa_of src in
  let main = Option.get (Func.find_func prog "main") in
  let blocks =
    Func.fold_blocks
      (fun acc b -> Ids.IntSet.add b.Block.bid acc)
      Ids.IntSet.empty main
  in
  let webs = Webs.in_blocks prog.Func.vartab main blocks in
  Alcotest.(check int) "no webs for arrays" 0 (List.length webs)

(* ------------------------------------------------------------------ *)
(* Destruct (out of SSA) *)

let test_destruct_preserves_behaviour () =
  let srcs =
    [
      simple_loop_src;
      {|
int x = 0;
int main() {
  int i;
  int a = 1;
  int b = 2;
  for (i = 0; i < 5; i++) {
    int t = a;
    a = b;
    b = t;       // swap forces a parallel-copy cycle at the join
    x = x + a;
  }
  print(a); print(b); print(x);
  return 0;
}
|};
    ]
  in
  List.iter
    (fun src ->
      let prog, _ = ssa_of src in
      let before = Rp_interp.Interp.run prog in
      List.iter Destruct.run prog.Func.funcs;
      (* no phis remain, all resources unversioned *)
      List.iter
        (fun (f : Func.t) ->
          Func.iter_blocks
            (fun b ->
              Alcotest.(check (list int)) "no phis" []
                (List.map
                   (fun (i : Instr.t) -> i.Instr.iid)
                   (Iseq.to_list b.Block.phis));
              Iseq.iter
                (fun (i : Instr.t) ->
                  List.iter
                    (fun (r : Resource.t) ->
                      Alcotest.(check int) "unversioned" 0 r.ver)
                    (Instr.mem_uses i.op @ Instr.mem_defs i.op))
                b.Block.body)
            f)
        prog.Func.funcs;
      let after = Rp_interp.Interp.run prog in
      Alcotest.(check bool) "same behaviour out of SSA" true
        (Rp_interp.Interp.same_behaviour before after))
    srcs

let test_parallel_move_cycle () =
  let f = Func.create_func ~name:"t" in
  (* moves: r0 <- r1, r1 <- r0 (a swap) *)
  f.Func.next_reg <- 2;
  let seq = Destruct.sequentialise f [ (0, Instr.Reg 1); (1, Instr.Reg 0) ] in
  (* simulate *)
  let env = Hashtbl.create 4 in
  Hashtbl.replace env 0 100;
  Hashtbl.replace env 1 200;
  List.iter
    (fun (d, s) ->
      let v =
        match s with
        | Instr.Reg r -> ( match Hashtbl.find_opt env r with Some v -> v | None -> 0)
        | Instr.Imm n -> n
      in
      Hashtbl.replace env d v)
    seq;
  Alcotest.(check int) "r0 gets old r1" 200 (Hashtbl.find env 0);
  Alcotest.(check int) "r1 gets old r0" 100 (Hashtbl.find env 1)

let test_parallel_move_chain () =
  let f = Func.create_func ~name:"t" in
  f.Func.next_reg <- 3;
  (* r1 <- r0, r2 <- r1: must read old r1 for r2 *)
  let seq = Destruct.sequentialise f [ (1, Instr.Reg 0); (2, Instr.Reg 1) ] in
  let env = Hashtbl.create 4 in
  Hashtbl.replace env 0 7;
  Hashtbl.replace env 1 8;
  Hashtbl.replace env 2 9;
  List.iter
    (fun (d, s) ->
      let v =
        match s with
        | Instr.Reg r -> Hashtbl.find env r
        | Instr.Imm n -> n
      in
      Hashtbl.replace env d v)
    seq;
  Alcotest.(check int) "r1 = old r0" 7 (Hashtbl.find env 1);
  Alcotest.(check int) "r2 = old r1" 8 (Hashtbl.find env 2)

(* The lost-copy/swap oracle.  A parallel copy's meaning is
   simultaneous: every source is read in the OLD state, then every
   target written.  [sequentialise] must implement exactly that with
   ordinary sequential copies, breaking cycles (the swap problem) with
   fresh temporaries and never clobbering a value before its last read
   (the lost-copy problem).  Random parallel assignments with distinct
   targets and arbitrary register/immediate sources cover both. *)
let prop_sequentialise_oracle =
  let gen =
    QCheck.Gen.(
      let* k = int_range 1 8 in
      let* ndst = int_range 1 k in
      let* perm = shuffle_l (List.init k Fun.id) in
      let dsts = List.filteri (fun i _ -> i < ndst) perm in
      let* srcs =
        flatten_l
          (List.map
             (fun _ ->
               oneof
                 [
                   map (fun r -> Instr.Reg r) (int_range 0 (k - 1));
                   map (fun n -> Instr.Imm n) (int_range (-50) 50);
                 ])
             dsts)
      in
      return (k, List.combine dsts srcs))
  in
  QCheck.Test.make ~name:"sequentialise matches the parallel-copy oracle"
    ~count:500 (QCheck.make gen) (fun (k, moves) ->
      let f = Func.create_func ~name:"pc" in
      f.Func.next_reg <- k;
      let seq = Destruct.sequentialise f moves in
      let init r = 1000 + r in
      (* the oracle: all sources evaluated in the initial state *)
      let par = Array.init k init in
      List.iter
        (fun (d, s) ->
          par.(d) <-
            (match s with Instr.Reg r -> init r | Instr.Imm n -> n))
        moves;
      (* the sequentialised copies, executed in order (temps included) *)
      let env = Hashtbl.create 16 in
      for r = 0 to k - 1 do
        Hashtbl.replace env r (init r)
      done;
      List.iter
        (fun (d, s) ->
          let v =
            match s with
            | Instr.Reg r -> (
                match Hashtbl.find_opt env r with
                | Some v -> v
                | None ->
                    QCheck.Test.fail_reportf
                      "sequentialised copy reads uninitialised r%d" r)
            | Instr.Imm n -> n
          in
          Hashtbl.replace env d v)
        seq;
      List.for_all
        (fun r ->
          if List.mem_assoc r moves then Hashtbl.find env r = par.(r)
          else Hashtbl.find env r = init r)
        (List.init k Fun.id))

let suite =
  [
    Alcotest.test_case "construct verifies" `Quick test_construct_verifies;
    Alcotest.test_case "loop phis" `Quick test_construct_loop_phis;
    Alcotest.test_case "pruned ssa" `Quick test_construct_pruned;
    Alcotest.test_case "versions positive" `Quick test_versions_positive;
    Alcotest.test_case "sreedhar-gao engine agrees" `Quick
      test_construct_sreedhar_gao_agrees;
    Alcotest.test_case "aliased defs versioned" `Quick test_aliased_defs_get_versions;
    Alcotest.test_case "webs: calls split" `Quick test_webs_fig_calls;
    Alcotest.test_case "webs: phis join" `Quick test_webs_join_phis;
    Alcotest.test_case "webs: arrays excluded" `Quick test_webs_exclude_arrays;
    Alcotest.test_case "destruct behaviour" `Quick test_destruct_preserves_behaviour;
    Alcotest.test_case "parallel move cycle" `Quick test_parallel_move_cycle;
    Alcotest.test_case "parallel move chain" `Quick test_parallel_move_chain;
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0x5eed |])
      prop_sequentialise_oracle;
  ]
