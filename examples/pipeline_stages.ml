(* A guided tour of the pipeline: the same small program printed at
   every stage, so the representations the paper talks about can be
   seen directly — memory resources appearing at lowering, versions and
   memory phis at SSA construction, the promoted form with its register
   phi mirroring the memory phi, and the cleaned final code.

   Run with:  dune exec examples/pipeline_stages.exe *)

open Rp_ir
module P = Rp_core.Pipeline

let source =
  {|
int total = 0;

int main() {
  int i;
  for (i = 0; i < 8; i++) {
    total = total + i;
  }
  print(total);
  return 0;
}
|}

let banner s =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 70 '=') s (String.make 70 '=')

let dump_main prog =
  let main = Option.get (Func.find_func prog "main") in
  print_string (Pp.func_to_string prog.Func.vartab main)

let () =
  banner "source";
  print_string source;

  banner "stage 1: lowered (global 'total' is a memory variable)";
  let prog = Rp_minic.Lower.compile source in
  dump_main prog;

  banner
    "stage 2: normalised (dedicated entry, preheader and tail blocks;\n\
     no critical edges)";
  let prog = Rp_minic.Lower.compile source in
  let trees =
    List.map
      (fun (f : Func.t) -> (f.Func.fname, Rp_analysis.Intervals.normalise f))
      prog.Func.funcs
  in
  dump_main prog;

  banner
    "stage 3: SSA (memory versions total_1, total_2, ... and the memory\n\
     phi at the loop header — the paper's Figure 1(b) shape)";
  List.iter Rp_ssa.Construct.run prog.Func.funcs;
  dump_main prog;

  banner "stage 4: promoted (loads/stores replaced; register phi mirrors\n\
          the memory phi; compensation store in the loop tail)";
  ignore (P.attach_profile prog trees);
  List.iter
    (fun (f : Func.t) ->
      match List.assoc_opt f.Func.fname trees with
      | Some tree ->
          ignore (Rp_core.Promote.promote_function f prog.Func.vartab tree)
      | None -> ())
    prog.Func.funcs;
  dump_main prog;

  banner "stage 5: cleaned (copy propagation + dead code elimination)";
  Rp_opt.Cleanup.run_prog prog;
  dump_main prog;

  banner "stage 6: out of SSA (phis gone, memory names collapsed)";
  List.iter Rp_ssa.Destruct.run prog.Func.funcs;
  dump_main prog;

  let r = Rp_interp.Interp.run prog in
  Printf.printf "\nfinal program output: %s (0+1+...+7 = 28)\n"
    (String.concat "," (List.map string_of_int r.Rp_interp.Interp.output))
