(* Dominator tree via the Cooper–Harvey–Kennedy "engineered" iterative
   algorithm.  Near-linear in practice and simple enough to trust, which
   matters because the promotion pass and the incremental SSA updater
   both lean on dominance queries.

   The result also precomputes preorder intervals on the dominator tree
   so that [dominates] is O(1). *)

open Rp_ir

type t = {
  idom : int array;  (** immediate dominator; entry maps to itself; -1 = dead *)
  children : int list array;  (** dominator tree children *)
  entry : Ids.bid;
  tin : int array;  (** DFS entry time on the dominator tree *)
  tout : int array;  (** DFS exit time *)
  rpo_num : int array;  (** reverse-postorder number, -1 for unreachable *)
  order : Ids.bid list;  (** reverse postorder of live blocks *)
}

let compute (f : Func.t) : t =
  Cfg.recompute_preds f;
  let n = Func.num_blocks f in
  let order = Cfg.rpo f in
  let rpo_num = Array.make n (-1) in
  List.iteri (fun i b -> rpo_num.(b) <- i) order;
  let idom = Array.make n (-1) in
  idom.(f.entry) <- f.entry;
  let intersect b1 b2 =
    let finger1 = ref b1 and finger2 = ref b2 in
    while !finger1 <> !finger2 do
      while rpo_num.(!finger1) > rpo_num.(!finger2) do
        finger1 := idom.(!finger1)
      done;
      while rpo_num.(!finger2) > rpo_num.(!finger1) do
        finger2 := idom.(!finger2)
      done
    done;
    !finger1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> f.entry then begin
          let preds =
            List.filter (fun p -> rpo_num.(p) >= 0) (Func.block f b).Block.preds
          in
          let processed = List.filter (fun p -> idom.(p) <> -1) preds in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      order
  done;
  let children = Array.make n [] in
  List.iter
    (fun b ->
      if b <> f.entry && idom.(b) >= 0 then
        children.(idom.(b)) <- b :: children.(idom.(b)))
    order;
  (* preorder timestamps for O(1) dominance queries *)
  let tin = Array.make n 0 and tout = Array.make n 0 in
  let clock = ref 0 in
  let rec dfs b =
    incr clock;
    tin.(b) <- !clock;
    List.iter dfs children.(b);
    incr clock;
    tout.(b) <- !clock
  in
  dfs f.entry;
  { idom; children; entry = f.entry; tin; tout; rpo_num; order }

(* The cached variant lives on the function itself, stamped with the
   CFG generation it was computed at, so repeated incremental SSA
   update batches (and the per-interval walks of the promoter) stop
   rebuilding an unchanged tree.  Storing the cache on [Func.t] rather
   than in a global table keeps it safe under the domain pool — each
   function is owned by exactly one task at a time — and makes hit
   counts independent of scheduling. *)
type Func.cache_entry += Dom_tree of t

let compute_cached (f : Func.t) : t =
  match f.Func.analysis_cache with
  | Some (g, Dom_tree d) when g = f.Func.cfg_gen ->
      Rp_obs.Metrics.incr "analysis.domcache.hits";
      d
  | _ ->
      Rp_obs.Metrics.incr "analysis.domcache.misses";
      let d = compute f in
      f.Func.analysis_cache <- Some (f.Func.cfg_gen, Dom_tree d);
      d

let entry t = t.entry

let idom t b = if b = t.entry then None else Some t.idom.(b)

let children t b = t.children.(b)

let reachable t b = t.rpo_num.(b) >= 0

(* Does block [a] dominate block [b]?  Reflexive. *)
let dominates t ~(a : Ids.bid) ~(b : Ids.bid) =
  t.tin.(a) <= t.tin.(b) && t.tout.(b) <= t.tout.(a)

let strictly_dominates t ~a ~b = a <> b && dominates t ~a ~b

(* Depth of [b] in the dominator tree (entry has depth 0). *)
let depth t b =
  let rec go b acc = if b = t.entry then acc else go t.idom.(b) (acc + 1) in
  go b 0

(* Least common ancestor in the dominator tree = least common dominator.
   Used to find the preheader of an improper interval (paper 4.1). *)
let least_common_dominator t (bs : Ids.bid list) : Ids.bid =
  let rec lift b k = if k <= 0 then b else lift t.idom.(b) (k - 1) in
  let lca a b =
    let da = depth t a and db = depth t b in
    let a = if da > db then lift a (da - db) else a in
    let b = if db > da then lift b (db - da) else b in
    let rec go a b = if a = b then a else go t.idom.(a) t.idom.(b) in
    go a b
  in
  match bs with
  | [] -> invalid_arg "least_common_dominator: empty"
  | b :: rest -> List.fold_left lca b rest

(* Walk from [b] up to the root, applying [f] at every block (including
   [b] and the entry). *)
let iter_dom_path t b ~f =
  let rec go b =
    f b;
    if b <> t.entry then go t.idom.(b)
  in
  go b
