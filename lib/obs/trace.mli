(** Lightweight tracing spans for the pipeline.

    A span records a named region of execution: wall-clock start and
    duration, nesting depth, and key/value attributes. The global sink
    decides what happens to spans:

    - [Off] (the default): {!with_span} runs the thunk with no
      recording — one branch of overhead, so instrumentation can stay
      in hot paths;
    - [Collect]: finished spans accumulate in memory, {!spans} returns
      them in start order;
    - [Stream]: each span is printed to [stderr] as it closes, indented
      by depth (and also collected).

    The sink is global mutable state, like a logger: the pipeline is a
    batch tool and its drivers (CLI, bench, tests) each own the
    process. Collection state (open frames, finished spans, sequence
    numbers) is {e per domain}: instrumented code can run on pool
    workers without locking, and a parallel section stitches its
    workers' spans back into the submitting domain's trace with
    {!capture} / {!graft} — in task order, so the resulting tree has
    the same shape whatever the interleaving (and, with
    {!set_deterministic}, the same bytes). *)

type sink = Off | Collect | Stream

type span = {
  name : string;
  depth : int;  (** nesting depth at start; top level = 0 *)
  seq : int;  (** start order, unique within a collection epoch *)
  start_s : float;  (** seconds since {!reset} (or the first span) *)
  duration_ms : float;
  attrs : (string * string) list;
}

val set_sink : sink -> unit

val sink : unit -> sink

(** [true] when the sink is not [Off]. *)
val enabled : unit -> bool

(** With deterministic mode on, every clock read returns 0: all span
    starts and durations are zero, so two runs of the same work emit
    byte-identical traces (and reports) regardless of timing or
    parallelism. Used by the jobs=1-vs-jobs=N golden tests and CI. *)
val set_deterministic : bool -> unit

val deterministic : unit -> bool

(** The wall clock ([Unix.gettimeofday]), or 0 in deterministic mode —
    for callers reporting their own wall-clock timings (the pipeline's
    schema-v2 timing section), so those also collapse to stable bytes
    under {!set_deterministic}. *)
val wall_s : unit -> float

(** Words allocated on this domain's minor heap so far
    ([Gc.minor_words]), or 0 in deterministic mode so that allocation
    deltas — like span durations — serialise to the same bytes on
    every run. *)
val alloc_words : unit -> float

(** Drop the current domain's collected spans and restart its epoch
    clock. *)
val reset : unit -> unit

(** [with_span name f] runs [f ()] inside a span. The span is recorded
    even when [f] raises. Attributes added by {!add_attr} during [f]
    are appended after [attrs]. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span; ignored when no
    span is open or the sink is [Off]. *)
val add_attr : string -> string -> unit

(** Finished spans in start order (empty when the sink was [Off]). *)
val spans : unit -> span list

(** {2 Parallel sections} *)

(** Spans collected by one {!capture}d task, not yet part of any
    domain's trace. *)
type captured

(** [capture f] runs [f ()] with a fresh, isolated collection state on
    the current domain (whichever domain that is — a pool worker or,
    for inline execution, the submitter) and returns its result
    together with the spans it produced. The previous state is
    restored afterwards, also on exception (the exception then wins
    and the captured spans are dropped with the task). *)
val capture : (unit -> 'a) -> 'a * captured

(** [graft c] appends the captured spans to the current domain's
    trace, under the innermost open span: depths are shifted by the
    current nesting, sequence numbers reassigned in graft order, and
    start times rebased to this domain's epoch. Grafting each task of
    a joined batch in submission order yields the same tree as running
    the tasks inline. No-op when the sink is [Off]. *)
val graft : captured -> unit

(** Render spans as an indented tree, one line per span:
    name, duration, attributes. *)
val pp_spans : Format.formatter -> span list -> unit
