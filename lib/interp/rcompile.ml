(* Register-allocated backend compiler.

   Compiles each [Func.t] to a bytecode over *physical slots*: the
   function is cloned, critical edges are split, register phis are
   lowered to sequentialised copies ([Rp_ssa.Destruct.lower]) and the
   resulting virtual registers are coalesced and colored onto frame
   slots ([Rp_regalloc.Slots]).  The execution engine ([Rengine]) then
   runs one untagged [int array] frame per activation, carved from a
   contiguous stack, instead of the flat engine's per-value parallel
   tag/payload/offset arrays.

   Value encoding
   --------------
   Every storage location is two adjacent words: a value word and a
   kind word.  Kind [-1] is an integer (value word holds it); kind
   [>= 0] is a pointer with the kind word holding the base vid and the
   value word the element offset.  The integer fast path for a binop is
   one test, [(kl land kr) < 0].  Operand slots are emitted
   pre-doubled, so the engine indexes [stk.(fp + o)] directly.  There
   is no "read before written" tag: the compiled engine only runs
   frontend-produced programs, whose SSA form guarantees definitions
   dominate uses.

   Fuel and counter parity with the oracle
   ---------------------------------------
   The tree-walker charges one fuel per executed instruction plus one
   per block, and raises [Out_of_fuel] at a precise point.  The
   compiled code charges fuel in *segments*: every control transfer
   carries the target block's entry-segment cost (its instruction
   ticks up to and including the first call, plus the block tick when
   call-free), and each call instruction carries an [after_cost]
   operand for the ticks between its return and the next segment
   boundary.  A deduction that would reach zero does not raise: it
   sets a sticky slow flag *without deducting*, and from then on the
   engine charges per instruction from a ticks side-table
   ([rticks.(base)] = the instruction's own tick plus the ticks of any
   omitted instructions since the previous emitted one), reproducing
   the oracle's exact exhaustion point.  Phi-lowering copies are an
   artefact of leaving SSA and carry zero ticks.

   Dynamic counters are reconstructed, not maintained: on a successful
   run every entered block ran to completion, so executed
   instructions / singleton loads / stores / aliased accesses are
   [sum over blocks of bcount(b) * static-per-block count].  Only
   block, edge and call counters (plus the extern counter) are bumped
   at run time, exactly as in the flat engine.

   Synthetic blocks
   ----------------
   Splitting a critical edge on the clone adds a block the oracle does
   not have.  Such blocks (bid >= the original block count) cost zero
   fuel and own no counters: the jump *into* one carries the dense ids
   of the logical edge (src, dst) it stands for, and its own jump
   carries per-function sink counter slots (each function's block and
   edge counter spans have one extra always-bumped slot) together with
   the real entry cost of the destination. *)

open Rp_ir
module Slots = Rp_regalloc.Slots
module Destruct = Rp_ssa.Destruct

(* Opcodes ([Rengine] matches on the literal values; an assertion
   there keeps the files in sync). *)
let op_bin_rr = 0 (* bop dst l r *)
let op_bin_ri = 1 (* bop dst l imm *)
let op_bin_ir = 2 (* bop dst imm r *)
let op_bin_ii = 3 (* bop dst imm imm *)
let op_un_r = 4 (* uop dst s *)
let op_un_i = 5 (* uop dst imm *)
let op_copy_r = 6 (* dst s *)
let op_copy_i = 7 (* dst imm *)
let op_load = 8 (* dst v2 *)
let op_store_r = 9 (* v2 s *)
let op_store_i = 10 (* v2 imm *)
let op_addr_r = 11 (* dst vid off *)
let op_addr_i = 12 (* dst vid imm *)
let op_pload_r = 13 (* dst a *)
let op_pload_i = 14 (* dst imm *)
let op_pstore = 15 (* ak a sk s *)
let op_call = 16 (* dst|-1 fid nargs after_cost (k v)... *)
let op_xcall = 17 (* dst|-1 *)
let op_call_unknown = 18 (* strid *)
let op_trap_rphi = 19 (* - *)
let op_print_r = 20 (* s *)
let op_print_i = 21 (* imm *)
let op_jmp = 22 (* off blk edge cost *)
let op_br = 23 (* cond toff tblk tedge tcost foff fblk fedge fcost *)
let op_ret_r = 24 (* s *)
let op_ret_i = 25 (* imm *)
let op_ret_void = 26 (* - *)

(* Superinstructions, emitted only by the fused compiler
   ([compile ~fuse:true]).  A fused opcode stands for two source
   instructions; its slow-path fuel is charged in two stages:
   [rticks.(base)] for the first half in the ordinary dispatch
   prologue, [rticks.(base + 1)] for the second half mid-instruction,
   after the first half executed and before the second can trap —
   preserving the oracle's exact trap and [Out_of_fuel] points. *)
let op_cbr_rr = 27 (* bop l r dst|-1 toff tblk tedge tcost foff fblk fedge fcost *)
let op_cbr_ri = 28 (* bop l imm dst|-1 <same 8 transfer words> *)
let op_cbr_ir = 29 (* bop imm r dst|-1 <same 8 transfer words> *)
let op_trap_div = 30 (* - : a folded literal division by zero *)
let op_bin2 = 31 (* shape bop1 a1 b1 tslot|-1 bop2 dst c2 *)
let op_load2 = 32 (* d1 v2a d2 v2b : two adjacent scalar loads *)
let op_bin_store = 33 (* shape bop a b dst|-1 v2 : binop into a store *)

(* Whole-statement memory superinstructions: [x = a ⊕ b] over
   address-taken scalars is load; load; bin(; store) — four oracle
   instructions whose intermediates the allocator cannot promote.  The
   fused forms keep both loaded values and the result in engine
   locals, never touching the frame slots; their slow-path fuel is
   staged through [rticks.(base)] … [rticks.(base + 3)], one charge
   per source instruction at the oracle's exact point. *)
let op_mm_bin = 34 (* shape bop v2a v2b dst : dst <- mem[a] op mem[b] *)
let op_mm_bin_store = 35 (* shape bop v2a v2b v2d : mem[d] <- mem[a] op mem[b] *)

(* [a[i] = v] with a constant index is addr; pstore — the pointer
   temporary never touches its slot.  Two fuel stages: the addr's in
   the prologue, the pstore's at [rticks.(base + 1)]. *)
let op_astore = 36 (* vid off sk s : *(addr vid off) <- s *)

(* A variable-index store's address is computed by a binop (pointer
   arithmetic), so the companion of [op_bin_store] writes through the
   computed pointer instead: [*(a bop b) <- s].  Same shape bits and
   staging as [op_bin_store]. *)
let op_bin_pstore = 37 (* shape bop a b tslot|-1 sk s *)

(* The accumulate chain [x = (a ⊕ b) ⊕ z(; store x)] — the dominant
   stencil shape — extends [op_mm_bin] with a second binop whose
   other operand is a slot or an immediate; the intermediate never
   touches its slot.  The first five words are the [op_mm_bin]
   image; [sh2] bit 1 = the chained value is the right operand of
   the second binop, bit 2 = [z] is an immediate.  The second
   binop's fuel stage follows the first's, and the store form's
   follows that. *)
let op_mm_bin2 = 38 (* shape bop x y sh2 bop2 z dst *)
let op_mm_bin2_store = 39 (* shape bop x y sh2 bop2 z v2d *)

(* The variable-index store in full: [addr; bin; pstore] — the sunk
   constant address flows into the pointer arithmetic, whose result
   flows into the store, and neither temporary touches its slot.
   The address is an immediate (value [off], kind [vid]); [sh] bit 1
   = the address is the binop's right operand, bit 2 = [y] is an
   immediate.  Three fuel stages: the addr's in the prologue, the
   binop's and the pstore's at [rticks.(base + 1)]/[(base + 2)]. *)
let op_abin_pstore = 40 (* shape bop vid off y sk s *)

(* Phi-lowering leaves bursts of 8–13 adjacent copies at block heads
   (loop-carried scalars re-seeded on every back edge).  A copy
   cannot trap and its slot write is unobservable mid-run, so a whole
   run executes under one dispatch with every tick — free phi moves
   and ticking copies alike — charged in the prologue.  Each entry is
   a (flag, dst, src) triple; flag 1 = immediate source. *)
let op_copy_n = 41 (* n (fl d s)×n *)

(* Post-promotion blocks are dominated by statement chains of the form
   [bin; store; bin; bin] — a scalar update into a promoted cell
   followed by the next expression pair.  When an [op_bin2] forms
   right behind an [op_bin_store], the two superinstructions merge
   into one dispatch: the store payload keeps its word offsets, the
   pair payload follows at +7.  Stage ticks sit at +1 (store), +2
   (first bin of the pair) and +3 (second), so every oracle abort
   point is preserved. *)
let op_bst_bin2 = 42 (* sh1 bop1 a b dslot|-1 v sh2 bop1' a1 b1 tslot|-1 bop2 dst c2 *)

type rfunc = {
  rfid : int;
  rname : string;
  mutable rparams : int array;
      (** pre-doubled slot offsets in arg order; -1 = dead parameter
          (never referenced; its argument is dropped) *)
  rlocals : int array;  (** address-taken local vids, save order *)
  mutable rnslots : int;  (** slots incl. the shared discard slot *)
  mutable frame_words : int;  (** 2*rnslots + 2*|rlocals| *)
  mutable rcode : int array;
  mutable rcode_len : int;
  mutable rticks : int array;
      (** slow-path fuel per instruction base offset *)
  mutable rstrs : string array;  (** unknown-callee names *)
  mutable rnstrs : int;
  mutable entry_off : int;
  mutable entry_block : int;  (** global block-counter id of the entry *)
  mutable entry_cost : int;  (** entry block's first-segment cost *)
  mutable rnblocks : int;  (** original (pre-split) block count *)
  mutable block_base : int;
  mutable edge_base : int;
  mutable rnedges : int;
  mutable edge_src : int array;  (** logical edge id -> source bid *)
  mutable edge_dst : int array;
  (* static per-original-block execution counts, for reconstruction *)
  mutable s_instrs : int array;
  mutable s_loads : int array;
  mutable s_stores : int array;
  mutable s_aloads : int array;
  mutable s_astores : int array;
  (* allocation statistics, for the bench report *)
  mutable rncoalesced : int;
  mutable rnoverflow : int;
  mutable rvregs : int;  (** virtual registers after lowering *)
}

type t = {
  rprog : Func.prog;
  budget : int option;
  fuse : bool;  (** peephole superinstruction fusion enabled *)
  rnvars : int;
  rarray_len : int array;  (** vid -> length; -1 for scalars *)
  rmem_init : int array;  (** interleaved (value, kind) per vid *)
  rfnames : string array;
  rfids : (string, int) Hashtbl.t;
  rfuncs : rfunc array;
  rmain : int;  (** -1 when the program has no [main] *)
  mutable rtotal_blocks : int;
  mutable rtotal_edges : int;
  mutable rfused_ops : int;  (** superinstructions emitted (2 ops each) *)
  mutable rops_eliminated : int;  (** copies folded away by the peephole *)
}

(* ------------------------------------------------------------------ *)

let grow_int (a : int array) (len : int) (need : int) =
  if need <= Array.length a then a
  else begin
    let a' = Array.make (max need (2 * max 1 (Array.length a))) 0 in
    Array.blit a 0 a' 0 len;
    a'
  end

let emit (rf : rfunc) (x : int) =
  rf.rcode <- grow_int rf.rcode rf.rcode_len (rf.rcode_len + 1);
  rf.rticks <- grow_int rf.rticks rf.rcode_len (rf.rcode_len + 1);
  rf.rcode.(rf.rcode_len) <- x;
  rf.rcode_len <- rf.rcode_len + 1

let add_str (rf : rfunc) (s : string) : int =
  if Array.length rf.rstrs <= rf.rnstrs then begin
    let a = Array.make (max 4 (2 * rf.rnstrs)) "" in
    Array.blit rf.rstrs 0 a 0 rf.rnstrs;
    rf.rstrs <- a
  end;
  rf.rstrs.(rf.rnstrs) <- s;
  rf.rnstrs <- rf.rnstrs + 1;
  rf.rnstrs - 1

let binop_code : Instr.binop -> int = function
  | Instr.Add -> 0
  | Instr.Sub -> 1
  | Instr.Mul -> 2
  | Instr.Div -> 3
  | Instr.Rem -> 4
  | Instr.Lt -> 5
  | Instr.Le -> 6
  | Instr.Gt -> 7
  | Instr.Ge -> 8
  | Instr.Eq -> 9
  | Instr.Ne -> 10
  | Instr.Band -> 11
  | Instr.Bor -> 12
  | Instr.Bxor -> 13
  | Instr.Shl -> 14
  | Instr.Shr -> 15

let unop_code : Instr.unop -> int = function Instr.Neg -> 0 | Instr.Lnot -> 1

(* Fold a literal-literal binop at compile time, mirroring the
   engine's integer fast path exactly.  Callers must rule out the
   trapping [Div]/[Rem] by zero first. *)
let binop_eval (op : Instr.binop) (a : int) (b : int) : int =
  match op with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> a / b
  | Instr.Rem -> a mod b
  | Instr.Lt -> if a < b then 1 else 0
  | Instr.Le -> if a <= b then 1 else 0
  | Instr.Gt -> if a > b then 1 else 0
  | Instr.Ge -> if a >= b then 1 else 0
  | Instr.Eq -> if a = b then 1 else 0
  | Instr.Ne -> if a <> b then 1 else 0
  | Instr.Band -> a land b
  | Instr.Bor -> a lor b
  | Instr.Bxor -> a lxor b
  | Instr.Shl -> a lsl (b land 63)
  | Instr.Shr -> a asr (b land 63)

(* ------------------------------------------------------------------ *)
(* Per-function compilation *)

(* Emission state threaded through one function. *)
type emitter = {
  rf : rfunc;
  fids : (string, int) Hashtbl.t;
  slot_of : int array;  (** vreg -> slot (not doubled); -1 = absent *)
  discard : int;  (** pre-doubled shared write-only slot *)
  orig_nblocks : int;
  block_cost : int array;  (** clone bid -> entry-segment cost *)
  block_off : int array;  (** clone bid -> code offset *)
  mutable pending : int;  (** omitted ticks since the last emitted op *)
  mutable seg : int;  (** ticks in the open fuel segment *)
  mutable seg_site : int;
      (** code index of the open segment's [after_cost] slot;
          -1 = the block's entry segment *)
  mutable cur_bid : int;
  edge_ids : (int, int) Hashtbl.t;
      (** logical (src, dst) pair -> dense edge id: every transfer over
          the same logical edge shares one interned counter slot *)
  (* peephole state, active only under [fuse] *)
  fuse : bool;
  use_cnt : int array;  (** vreg -> number of (live) operand uses *)
  mutable pend : Instr.t option;
      (** a single-use copy held back one instruction, waiting to fold
          into its consumer; flushed unchanged if the consumer is not
          the immediately next instruction *)
  mutable last_bin : int;
      (** code base of the last emitted plain binop, a fusion
          candidate iff [last_bin + 5 = rcode_len] (nothing emitted
          since); -1 = none *)
  mutable last_bin_dst : int;  (** its IR destination register *)
  mutable last_load : int;
      (** code base of the last emitted plain load, a [op_load2]
          candidate iff [last_load + 3 = rcode_len]; -1 = none *)
  mutable last_load_dst : int;  (** its IR destination register *)
  mutable last_load2 : int;
      (** code base of the last emitted [op_load2], an [op_mm_bin]
          candidate iff [last_load2 + 5 = rcode_len]; -1 = none *)
  mutable last_l2a : int;  (** IR dst of its first load *)
  mutable last_l2b : int;  (** IR dst of its second load *)
  mutable last_mm : int;
      (** code base of the last emitted [op_mm_bin], an
          [op_mm_bin_store] candidate iff [last_mm + 6 = rcode_len] *)
  mutable last_mm_dst : int;  (** its IR destination register *)
  mutable last_mm2 : int;
      (** code base of the last emitted [op_mm_bin2], an
          [op_mm_bin2_store] candidate iff [last_mm2 + 9 = rcode_len] *)
  mutable last_mm2_dst : int;  (** its IR destination register *)
  mutable haddr : int;
      (** a held (sunk) constant address: the dst vreg of a
          single-use [addr_i] whose emission is delayed to its sole
          consumer — fused into [op_astore] when that is a pointer
          store, flushed as a plain [op_addr_i] otherwise.  The
          computation is pure, so only its fuel tick is position
          sensitive, and that rides [pending].  -1 = none *)
  mutable haddr_vid : int;
  mutable haddr_off : int;
  mutable hpb : int;
      (** a held pointer binop over a sunk address, the [addr; bin]
          prefix of a candidate [op_abin_pstore]: -1 = none.  Held at
          most one instruction; flushed as a plain [op_addr_i] plus a
          plain binop if the next instruction is not the consuming
          pointer store.  Only the two temporaries' fuel ticks are
          position sensitive: the addr's rides [pending], the bin's
          is re-staged at flush or fuse time. *)
  mutable hpb_dst : int;  (** the binop's IR destination register *)
  mutable hpb_vid : int;
  mutable hpb_off : int;
  mutable hpb_bop : int;
  mutable hpb_sh : int;
  mutable hpb_y : int;
  mutable hpb_dslot : int;  (** [slot hpb_dst], for the flush path *)
  mutable hpb_aslot : int;  (** the sunk address's slot, ditto *)
  mutable last_bst : int;
      (** code base of the last emitted [op_bin_store], a merge
          candidate iff [last_bst + 7 = rcode_len]; -1 = none *)
  mutable last_cpy : int;
      (** code base of the last emitted [op_copy_n], extendable iff
          [last_cpy + 2 + 3*n = rcode_len]; -1 = none *)
  mutable last_c1 : int;
      (** code base of the last emitted single copy, the seed of a
          run iff [last_c1 + 3 = rcode_len]; -1 = none *)
  mutable n_fused : int;
  mutable n_elim : int;
}

let slot (e : emitter) (r : Ids.reg) : int =
  let s = if r < Array.length e.slot_of then e.slot_of.(r) else -1 in
  if s >= 0 then 2 * s else e.discard

(* Start an emitted instruction: record its slow-path ticks.  [tk]
   already includes any pending omitted ticks. *)
let start (e : emitter) (tk : int) =
  let base = e.rf.rcode_len in
  e.rf.rticks <- grow_int e.rf.rticks base (base + 1);
  e.rf.rticks.(base) <- tk

(* An ordinary (ticking) instruction. *)
let start_tick (e : emitter) =
  start e (e.pending + 1);
  e.pending <- 0;
  e.seg <- e.seg + 1

(* An omitted ticking instruction: charged with the next emitted op. *)
let omit_tick (e : emitter) =
  e.pending <- e.pending + 1;
  e.seg <- e.seg + 1

(* Materialise a held constant address as a plain [op_addr_i]: its
   tick was omitted at the hold point, so the op carries only the
   accumulated pending ticks (possibly zero).  Delaying the slot
   write is invisible — the slot's only reader is the consumer this
   flush precedes. *)
let flush_haddr (e : emitter) =
  if e.haddr >= 0 then begin
    let rf = e.rf in
    start e e.pending;
    e.pending <- 0;
    emit rf op_addr_i;
    emit rf (slot e e.haddr);
    emit rf e.haddr_vid;
    emit rf e.haddr_off;
    e.haddr <- -1
  end

(* The pointer store did not follow: re-emit the held [addr; bin]
   prefix plain.  The addr carries every omitted tick so far; the
   bin, whose segment slot was counted when it was held, carries its
   own tick at its own position, and becomes an ordinary fusion
   candidate again. *)
let flush_hpb (e : emitter) =
  if e.hpb >= 0 then begin
    let rf = e.rf in
    start e e.pending;
    e.pending <- 0;
    emit rf op_addr_i;
    emit rf e.hpb_aslot;
    emit rf e.hpb_vid;
    emit rf e.hpb_off;
    let bbase = rf.rcode_len in
    start e 1;
    emit rf
      (if e.hpb_sh land 2 <> 0 then
         if e.hpb_sh land 1 <> 0 then op_bin_ir else op_bin_ri
       else op_bin_rr);
    emit rf e.hpb_bop;
    emit rf e.hpb_dslot;
    if e.hpb_sh land 1 <> 0 then begin
      emit rf e.hpb_y;
      emit rf e.hpb_aslot
    end
    else begin
      emit rf e.hpb_aslot;
      emit rf e.hpb_y
    end;
    e.last_bin <- bbase;
    e.last_bin_dst <- e.hpb_dst;
    e.hpb <- -1
  end

(* Close the open fuel segment: the entry segment lands in
   [block_cost], later ones patch their call's [after_cost] slot. *)
let close_seg (e : emitter) =
  if e.seg_site < 0 then e.block_cost.(e.cur_bid) <- e.seg
  else e.rf.rcode.(e.seg_site) <- e.seg;
  e.seg <- 0

(* A control transfer [cur -> t] in the clone.  Emits
   [off; blk; edge; cost]; [off] and [cost] hold the clone target bid
   until the patch pass.  Jumps into a synthetic block stand for the
   logical edge to its unique successor; jumps out of one bump the
   per-function sink counters.  Logical edges are interned: the sink
   occupies slot 0 of the function's edge-counter span and real edge
   [k] lives at [edge_base + 1 + k], so every transfer over the same
   (src, dst) pair — including the two sides of a branch to one
   target — shares a single dense counter, independent of block
   emission order. *)
let emit_edge (e : emitter) (g : Func.t) ~(t : Ids.bid) =
  let rf = e.rf in
  if e.cur_bid >= e.orig_nblocks then begin
    (* synthetic source: counters were bumped on the way in *)
    emit rf t;
    emit rf (rf.block_base + rf.rnblocks);
    emit rf rf.edge_base;
    emit rf t
  end
  else begin
    let d =
      if t < e.orig_nblocks then t
      else
        match (Func.block g t).Block.term with
        | Block.Jmp d -> d
        | _ -> assert false
    in
    let key = (e.cur_bid * e.orig_nblocks) + d in
    let k =
      match Hashtbl.find_opt e.edge_ids key with
      | Some k -> k
      | None ->
          let k = rf.rnedges in
          rf.edge_src <- grow_int rf.edge_src k (k + 1);
          rf.edge_dst <- grow_int rf.edge_dst k (k + 1);
          rf.edge_src.(k) <- e.cur_bid;
          rf.edge_dst.(k) <- d;
          rf.rnedges <- k + 1;
          Hashtbl.add e.edge_ids key k;
          k
    in
    emit rf t;
    emit rf (rf.block_base + d);
    emit rf (rf.edge_base + 1 + k);
    emit rf t
  end

let compile_instr (e : emitter) (moves : Ids.IntSet.t) (i : Instr.t) =
  let rf = e.rf in
  match i.Instr.op with
  | Instr.Copy { dst; src } when Ids.IntSet.mem i.Instr.iid moves -> (
      (* phi-lowering move: free; vanishes entirely when coalesced.
         An immediate source only appears when the peephole folded a
         literal copy into the move. *)
      match src with
      | Instr.Reg s ->
          let d = slot e dst and sl = slot e s in
          if d <> sl then begin
            start e e.pending;
            e.pending <- 0;
            emit rf op_copy_r;
            emit rf d;
            emit rf sl
          end
      | Instr.Imm n ->
          start e e.pending;
          e.pending <- 0;
          emit rf op_copy_i;
          emit rf (slot e dst);
          emit rf n)
  | Instr.Copy { dst; src = Instr.Reg s } when slot e dst = slot e s ->
      omit_tick e
  | Instr.Copy { dst; src } -> (
      start_tick e;
      match src with
      | Instr.Reg s ->
          emit rf op_copy_r;
          emit rf (slot e dst);
          emit rf (slot e s)
      | Instr.Imm n ->
          emit rf op_copy_i;
          emit rf (slot e dst);
          emit rf n)
  | Instr.Bin { dst; op; l; r } ->
      start_tick e;
      let bop = binop_code op in
      (match (l, r) with
      | Instr.Reg a, Instr.Reg b ->
          emit rf op_bin_rr;
          emit rf bop;
          emit rf (slot e dst);
          emit rf (slot e a);
          emit rf (slot e b)
      | Instr.Reg a, Instr.Imm n ->
          emit rf op_bin_ri;
          emit rf bop;
          emit rf (slot e dst);
          emit rf (slot e a);
          emit rf n
      | Instr.Imm n, Instr.Reg b ->
          emit rf op_bin_ir;
          emit rf bop;
          emit rf (slot e dst);
          emit rf n;
          emit rf (slot e b)
      | Instr.Imm n, Instr.Imm m ->
          emit rf op_bin_ii;
          emit rf bop;
          emit rf (slot e dst);
          emit rf n;
          emit rf m)
  | Instr.Un { dst; op; src } -> (
      start_tick e;
      let u = unop_code op in
      match src with
      | Instr.Reg a ->
          emit rf op_un_r;
          emit rf u;
          emit rf (slot e dst);
          emit rf (slot e a)
      | Instr.Imm n ->
          emit rf op_un_i;
          emit rf u;
          emit rf (slot e dst);
          emit rf n)
  | Instr.Load { dst; src } ->
      start_tick e;
      emit rf op_load;
      emit rf (slot e dst);
      emit rf (2 * src.Resource.base)
  | Instr.Store { dst; src } -> (
      start_tick e;
      match src with
      | Instr.Reg a ->
          emit rf op_store_r;
          emit rf (2 * dst.Resource.base);
          emit rf (slot e a)
      | Instr.Imm n ->
          emit rf op_store_i;
          emit rf (2 * dst.Resource.base);
          emit rf n)
  | Instr.Addr_of { dst; var; off } -> (
      start_tick e;
      match off with
      | Instr.Reg a ->
          emit rf op_addr_r;
          emit rf (slot e dst);
          emit rf var;
          emit rf (slot e a)
      | Instr.Imm n ->
          emit rf op_addr_i;
          emit rf (slot e dst);
          emit rf var;
          emit rf n)
  | Instr.Ptr_load { dst; addr; muses = _ } -> (
      start_tick e;
      match addr with
      | Instr.Reg a ->
          emit rf op_pload_r;
          emit rf (slot e dst);
          emit rf (slot e a)
      | Instr.Imm n ->
          emit rf op_pload_i;
          emit rf (slot e dst);
          emit rf n)
  | Instr.Ptr_store { addr; src; mdefs = _; muses = _ } ->
      start_tick e;
      emit rf op_pstore;
      (match addr with
      | Instr.Reg a ->
          emit rf 0;
          emit rf (slot e a)
      | Instr.Imm n ->
          emit rf 1;
          emit rf n);
      (match src with
      | Instr.Reg a ->
          emit rf 0;
          emit rf (slot e a)
      | Instr.Imm n ->
          emit rf 1;
          emit rf n)
  | Instr.Call { dst; callee; args; mdefs = _; muses = _ } -> (
      start_tick e;
      let dst_slot = match dst with Some d -> slot e d | None -> -1 in
      match callee with
      | Instr.User name -> (
          match Hashtbl.find_opt e.fids name with
          | Some fid ->
              emit rf op_call;
              emit rf dst_slot;
              emit rf fid;
              emit rf (List.length args);
              (* the call's own tick closes this fuel segment; the
                 slot emitted here is patched with the next one *)
              close_seg e;
              emit rf 0;
              e.seg_site <- rf.rcode_len - 1;
              List.iter
                (fun a ->
                  match a with
                  | Instr.Reg r ->
                      emit rf 0;
                      emit rf (slot e r)
                  | Instr.Imm n ->
                      emit rf 1;
                      emit rf n)
                args
          | None ->
              (* an error only if executed; argument reads cannot
                 trap, so the arguments are dropped *)
              emit rf op_call_unknown;
              emit rf (add_str rf name))
      | Instr.Extern _ ->
          emit rf op_xcall;
          emit rf dst_slot)
  | Instr.Dummy_aload _ | Instr.Exit_use _ | Instr.Mphi _ -> omit_tick e
  | Instr.Rphi _ ->
      start_tick e;
      emit rf op_trap_rphi
  | Instr.Print { src } -> (
      start_tick e;
      match src with
      | Instr.Reg a ->
          emit rf op_print_r;
          emit rf (slot e a)
      | Instr.Imm n ->
          emit rf op_print_i;
          emit rf n)

(* ------------------------------------------------------------------ *)
(* Peephole fusion layer ([compile ~fuse:true]).

   A thin wrapper between slot assignment and emission.  It never
   changes observable behaviour: ticks of folded instructions ride the
   existing [pending] machinery (charged with the next emitted op, a
   span that contains no observable event), trapping shapes are never
   folded, and every transformation is local to one emitted-op
   window — a held copy is resolved at the very next instruction, and
   a superinstruction only forms from the immediately preceding
   emitted op, so no slot can be clobbered in between. *)

(* Does [op] read register [r]?  (Terminator uses are handled
   separately in [compile_term].) *)
let uses_reg (op : Instr.opcode) (r : Ids.reg) : bool =
  List.exists (fun u -> u = r) (Instr.reg_uses op)

(* Rewrite every operand [Reg from_] in [i] (a scratch clone
   instruction) to [to_]. *)
let subst_reg (i : Instr.t) (from_ : Ids.reg) (to_ : Instr.operand) =
  let sb (o : Instr.operand) =
    match o with Instr.Reg r when r = from_ -> to_ | _ -> o
  in
  match i.Instr.op with
  | Instr.Bin { dst; op; l; r } ->
      i.Instr.op <- Instr.Bin { dst; op; l = sb l; r = sb r }
  | Instr.Un { dst; op; src } -> i.Instr.op <- Instr.Un { dst; op; src = sb src }
  | Instr.Copy { dst; src } -> i.Instr.op <- Instr.Copy { dst; src = sb src }
  | Instr.Print { src } -> i.Instr.op <- Instr.Print { src = sb src }
  | Instr.Store { dst; src } -> i.Instr.op <- Instr.Store { dst; src = sb src }
  | Instr.Addr_of { dst; var; off } ->
      i.Instr.op <- Instr.Addr_of { dst; var; off = sb off }
  | Instr.Ptr_load { dst; addr; muses } ->
      i.Instr.op <- Instr.Ptr_load { dst; addr = sb addr; muses }
  | Instr.Ptr_store { addr; src; mdefs; muses } ->
      i.Instr.op <- Instr.Ptr_store { addr = sb addr; src = sb src; mdefs; muses }
  | Instr.Call { dst; callee; args; mdefs; muses } ->
      i.Instr.op <- Instr.Call { dst; callee; args = List.map sb args; mdefs; muses }
  | Instr.Load _ | Instr.Dummy_aload _ | Instr.Exit_use _ | Instr.Rphi _
  | Instr.Mphi _ ->
      ()

(* Fused mode: coalesce the copy just emitted at [b] (3 words) into a
   run.  Adjacent copies glue into one [op_copy_n] whose prologue
   charges the whole run's ticks at once — sound because a copy never
   traps and its slot write is unobservable mid-run, so no abort can
   tell the batched charge from the staged one.  Free phi moves (tick
   0) and ticking copies mix freely; [rticks] entries simply add. *)
let merge_copy (e : emitter) (b : int) =
  let rf = e.rf in
  let fl = if rf.rcode.(b) = op_copy_i then 1 else 0 in
  if
    e.last_cpy >= 0
    && e.last_cpy + 2 + (3 * rf.rcode.(e.last_cpy + 1)) = b
  then begin
    (* extend the open run in place *)
    rf.rcode.(b) <- fl;
    rf.rcode.(e.last_cpy + 1) <- rf.rcode.(e.last_cpy + 1) + 1;
    rf.rticks.(e.last_cpy) <- rf.rticks.(e.last_cpy) + rf.rticks.(b);
    e.n_fused <- e.n_fused + 1
  end
  else if e.last_c1 >= 0 && e.last_c1 + 3 = b then begin
    (* two adjacent copies seed a run: rewind and re-emit as a pair *)
    let p = e.last_c1 in
    let f1 = if rf.rcode.(p) = op_copy_i then 1 else 0 in
    let d1 = rf.rcode.(p + 1) and s1 = rf.rcode.(p + 2) in
    let d2 = rf.rcode.(b + 1) and s2 = rf.rcode.(b + 2) in
    let t2 = rf.rticks.(b) in
    rf.rcode_len <- p;
    emit rf op_copy_n;
    emit rf 2;
    emit rf f1;
    emit rf d1;
    emit rf s1;
    emit rf fl;
    emit rf d2;
    emit rf s2;
    rf.rticks.(p) <- rf.rticks.(p) + t2;
    e.last_cpy <- p;
    e.last_c1 <- -1;
    e.n_fused <- e.n_fused + 1
  end
  else e.last_c1 <- b

let compile_instr_fused (e : emitter) (moves : Ids.IntSet.t) (i : Instr.t) =
  let rf = e.rf in
  (* 0. a held pointer binop survives exactly one instruction: either
     this is the consuming pointer store (fused below) or the prefix
     is re-emitted plain *)
  (if e.hpb >= 0 then
     let consumed =
       match i.Instr.op with
       | Instr.Ptr_store { addr = Instr.Reg a; _ } -> a = e.hpb_dst
       | _ -> false
     in
     if not consumed then flush_hpb e);
  (* 1. resolve the held single-use copy against this instruction:
     fold it in when this is its consumer, emit it unchanged
     otherwise *)
  (match e.pend with
  | Some p ->
      let pd, psrc =
        match p.Instr.op with
        | Instr.Copy { dst; src } -> (dst, src)
        | _ -> assert false
      in
      e.pend <- None;
      if uses_reg i.Instr.op pd then begin
        subst_reg i pd psrc;
        omit_tick e;
        e.n_elim <- e.n_elim + 1
      end
      else begin
        let before = rf.rcode_len in
        compile_instr e moves p;
        if
          rf.rcode_len = before + 3
          && (rf.rcode.(before) = op_copy_r || rf.rcode.(before) = op_copy_i)
        then merge_copy e before
      end
  | None -> ());
  (* 2. constant folding and identity canonicalisation (pointer-safe
     shapes only: Add/Sub with a zero immediate never trap, a literal
     division by zero must keep trapping) *)
  (match i.Instr.op with
  | Instr.Bin { dst; op; l = Instr.Imm a; r = Instr.Imm b } -> (
      match op with
      | (Instr.Div | Instr.Rem) when b = 0 -> ()
      | _ -> i.Instr.op <- Instr.Copy { dst; src = Instr.Imm (binop_eval op a b) })
  | Instr.Bin { dst; op = Instr.Add; l; r = Instr.Imm 0 }
  | Instr.Bin { dst; op = Instr.Sub; l; r = Instr.Imm 0 } ->
      i.Instr.op <- Instr.Copy { dst; src = l }
  | Instr.Bin { dst; op = Instr.Add; l = Instr.Imm 0; r } ->
      i.Instr.op <- Instr.Copy { dst; src = r }
  | _ -> ());
  (* 3. a held address must be materialised before any instruction
     that touches its register — unless that instruction is the
     consuming pointer store, which fuses it below *)
  (if e.haddr >= 0 then
     let consumed =
       match i.Instr.op with
       | Instr.Ptr_store { addr = Instr.Reg a; _ } -> a = e.haddr
       | Instr.Bin { dst; l; r; _ } ->
           (* the pointer-binop hold below absorbs the address *)
           dst <> e.haddr
           && e.use_cnt.(dst) = 1
           && (l = Instr.Reg e.haddr) <> (r = Instr.Reg e.haddr)
       | _ -> false
     in
     if
       (not consumed)
       && (uses_reg i.Instr.op e.haddr
          || Instr.reg_def i.Instr.op = Some e.haddr)
     then flush_haddr e);
  match i.Instr.op with
  | Instr.Bin { dst; op; l; r }
    when e.haddr >= 0 && dst <> e.haddr
         && e.use_cnt.(dst) = 1
         && (l = Instr.Reg e.haddr) <> (r = Instr.Reg e.haddr) ->
      (* the pointer arithmetic over a sunk address: hold the whole
         [addr; bin] prefix one more instruction, hoping a pointer
         store consumes it.  Nothing is emitted; only the bin's
         segment slot is counted here. *)
      let swapped = r = Instr.Reg e.haddr in
      let sh = ref (if swapped then 1 else 0) in
      let y =
        match if swapped then l else r with
        | Instr.Imm n ->
            sh := !sh lor 2;
            n
        | Instr.Reg o -> slot e o
      in
      e.hpb <- 1;
      e.hpb_dst <- dst;
      e.hpb_vid <- e.haddr_vid;
      e.hpb_off <- e.haddr_off;
      e.hpb_bop <- binop_code op;
      e.hpb_sh <- !sh;
      e.hpb_y <- y;
      e.hpb_dslot <- slot e dst;
      e.hpb_aslot <- slot e e.haddr;
      e.seg <- e.seg + 1;
      e.haddr <- -1
  | Instr.Bin { op = Instr.Div | Instr.Rem; l = Instr.Imm _; r = Instr.Imm 0; _ }
    ->
      (* the only literal-literal binop left: it always traps, so
         [op_bin_ii] never reaches the dispatch loop *)
      start_tick e;
      emit rf op_trap_div
  | Instr.Copy { dst; _ }
    when (not (Ids.IntSet.mem i.Instr.iid moves)) && e.use_cnt.(dst) = 0 ->
      (* dead copy: no reader anywhere, and a copy cannot trap *)
      omit_tick e;
      e.n_elim <- e.n_elim + 1
  | Instr.Copy { dst; _ }
    when (not (Ids.IntSet.mem i.Instr.iid moves)) && e.use_cnt.(dst) = 1 ->
      e.pend <- Some i
  | Instr.Bin { dst; op; l; r }
    when e.last_bin >= 0
         && e.last_bin + 5 = rf.rcode_len
         && (l = Instr.Reg e.last_bin_dst) <> (r = Instr.Reg e.last_bin_dst) ->
      (* fuse the producing binop and this consumer into [op_bin2];
         the intermediate flows through the engine's scratch and its
         slot write is skipped when this was its only use *)
      let t = e.last_bin_dst in
      let bbase = e.last_bin in
      let op1 = rf.rcode.(bbase) in
      let bop1 = rf.rcode.(bbase + 1) in
      let tslot = rf.rcode.(bbase + 2) in
      let a1 = rf.rcode.(bbase + 3) in
      let b1 = rf.rcode.(bbase + 4) in
      let tr = r = Instr.Reg t in
      let sh = ref 0 in
      if op1 = op_bin_ir then sh := !sh lor 1;
      if op1 = op_bin_ri then sh := !sh lor 2;
      if tr then sh := !sh lor 4;
      let c2 =
        match if tr then l else r with
        | Instr.Reg s -> slot e s
        | Instr.Imm n ->
            sh := !sh lor 8;
            n
      in
      rf.rcode_len <- bbase;
      emit rf op_bin2;
      emit rf !sh;
      emit rf bop1;
      emit rf a1;
      emit rf b1;
      emit rf (if e.use_cnt.(t) > 1 then tslot else -1);
      emit rf (binop_code op);
      emit rf (slot e dst);
      emit rf c2;
      rf.rticks.(bbase + 1) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_bin <- -1;
      if e.last_bst >= 0 && e.last_bst + 7 = bbase then begin
        (* the pair formed right behind an adjacent bin_store: merge
           both superinstructions into [op_bst_bin2].  The store
           payload keeps its offsets; the pair payload shifts down
           over the absorbed opcode word, and its two stage ticks
           move to the +2/+3 positions. *)
        let p = e.last_bst in
        rf.rcode.(p) <- op_bst_bin2;
        rf.rticks.(p + 2) <- rf.rticks.(bbase);
        rf.rticks.(p + 3) <- rf.rticks.(bbase + 1);
        for k = 7 to 14 do
          rf.rcode.(p + k) <- rf.rcode.(p + k + 1)
        done;
        rf.rcode_len <- p + 15;
        e.last_bst <- -1;
        e.n_fused <- e.n_fused + 1
      end
  | Instr.Load { dst; src }
    when e.last_load >= 0 && e.last_load + 3 = rf.rcode_len ->
      (* two adjacent scalar loads share one dispatch; nothing is
         reordered or elided, so aliasing cannot be disturbed *)
      let bbase = e.last_load in
      let d1 = rf.rcode.(bbase + 1) in
      let v1 = rf.rcode.(bbase + 2) in
      rf.rcode_len <- bbase;
      emit rf op_load2;
      emit rf d1;
      emit rf v1;
      emit rf (slot e dst);
      emit rf (2 * src.Resource.base);
      rf.rticks.(bbase + 1) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_load2 <- bbase;
      e.last_l2a <- e.last_load_dst;
      e.last_l2b <- dst;
      e.last_load <- -1;
      e.last_bin <- -1
  | Instr.Bin { dst; op; l; r }
    when e.last_load2 >= 0
         && e.last_load2 + 5 = rf.rcode_len
         && e.last_l2a <> e.last_l2b
         && e.use_cnt.(e.last_l2a) = 1
         && e.use_cnt.(e.last_l2b) = 1
         && ((l = Instr.Reg e.last_l2a && r = Instr.Reg e.last_l2b)
            || (l = Instr.Reg e.last_l2b && r = Instr.Reg e.last_l2a)) ->
      (* the whole [x <- mem[a] op mem[b]] statement: both loaded
         values stay in engine locals, their slot writes vanish
         (single use each) *)
      let bbase = e.last_load2 in
      let va = rf.rcode.(bbase + 2) in
      let vb = rf.rcode.(bbase + 4) in
      let swapped = l = Instr.Reg e.last_l2b in
      rf.rcode_len <- bbase;
      emit rf op_mm_bin;
      emit rf (if swapped then 1 else 0);
      emit rf (binop_code op);
      emit rf va;
      emit rf vb;
      emit rf (slot e dst);
      rf.rticks.(bbase + 2) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_mm <- bbase;
      e.last_mm_dst <- dst;
      e.last_load2 <- -1;
      e.last_bin <- -1;
      e.last_load <- -1
  | Instr.Bin { dst; op; l; r }
    when e.last_load >= 0
         && e.last_load + 3 = rf.rcode_len
         && e.use_cnt.(e.last_load_dst) = 1
         && (l = Instr.Reg e.last_load_dst) <> (r = Instr.Reg e.last_load_dst)
    ->
      (* one-memory-operand statement head: [t <- mem[a] op y] with
         [y] an immediate or a register; the loaded value never
         touches its slot (single use), and the binop's tick moves up
         to [rticks.(bbase + 1)] *)
      let ld = e.last_load_dst in
      let bbase = e.last_load in
      let va = rf.rcode.(bbase + 2) in
      let swapped = r = Instr.Reg ld in
      let sh = ref (if swapped then 1 else 0) in
      let y =
        match if swapped then l else r with
        | Instr.Imm n ->
            sh := !sh lor 2;
            n
        | Instr.Reg o ->
            sh := !sh lor 4;
            slot e o
      in
      rf.rcode_len <- bbase;
      emit rf op_mm_bin;
      emit rf !sh;
      emit rf (binop_code op);
      emit rf va;
      emit rf y;
      emit rf (slot e dst);
      rf.rticks.(bbase + 1) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_mm <- bbase;
      e.last_mm_dst <- dst;
      e.last_load <- -1;
      e.last_bin <- -1
  | Instr.Bin { dst; op; l; r }
    when e.last_mm >= 0
         && e.last_mm + 6 = rf.rcode_len
         && e.use_cnt.(e.last_mm_dst) = 1
         && (l = Instr.Reg e.last_mm_dst) <> (r = Instr.Reg e.last_mm_dst)
    ->
      (* accumulate chain [x <- (mem[a] op y) op2 z]: the whole
         statement head stays in engine locals; the intermediate's
         slot write vanishes (single use) *)
      let t = e.last_mm_dst in
      let bbase = e.last_mm in
      let sh = rf.rcode.(bbase + 1) in
      let bop = rf.rcode.(bbase + 2) in
      let x = rf.rcode.(bbase + 3) in
      let y = rf.rcode.(bbase + 4) in
      let swapped = r = Instr.Reg t in
      let sh2 = ref (if swapped then 1 else 0) in
      let z =
        match if swapped then l else r with
        | Instr.Imm n ->
            sh2 := !sh2 lor 2;
            n
        | Instr.Reg o -> slot e o
      in
      rf.rcode_len <- bbase;
      emit rf op_mm_bin2;
      emit rf sh;
      emit rf bop;
      emit rf x;
      emit rf y;
      emit rf !sh2;
      emit rf (binop_code op);
      emit rf z;
      emit rf (slot e dst);
      rf.rticks.(bbase + (if sh land 6 = 0 then 3 else 2)) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_mm <- -1;
      e.last_mm2 <- bbase;
      e.last_mm2_dst <- dst;
      e.last_load <- -1;
      e.last_bin <- -1
  | Instr.Store { dst; src = Instr.Reg s }
    when e.last_mm2 >= 0 && e.last_mm2 + 9 = rf.rcode_len
         && s = e.last_mm2_dst && e.use_cnt.(s) = 1 ->
      (* … and the chain ends in memory: the opcode and destination
         are rewritten in place, the store tick landing one stage
         past the second binop's *)
      let bbase = e.last_mm2 in
      rf.rcode.(bbase) <- op_mm_bin2_store;
      rf.rcode.(bbase + 8) <- 2 * dst.Resource.base;
      let st = if rf.rcode.(bbase + 1) land 6 = 0 then 4 else 3 in
      rf.rticks.(bbase + st) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_mm2 <- -1
  | Instr.Store { dst; src = Instr.Reg s }
    when e.last_mm >= 0 && e.last_mm + 6 = rf.rcode_len && s = e.last_mm_dst
         && e.use_cnt.(s) = 1 ->
      (* … and on into memory: [mem[d] <- mem[a] op mem[b]] in one
         dispatch, same length, so the opcode and destination are
         rewritten in place; the store tick lands after the binop's
         stage, whose index depends on the operand shape *)
      let bbase = e.last_mm in
      rf.rcode.(bbase) <- op_mm_bin_store;
      rf.rcode.(bbase + 5) <- 2 * dst.Resource.base;
      let st = if rf.rcode.(bbase + 1) land 6 = 0 then 3 else 2 in
      rf.rticks.(bbase + st) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_mm <- -1
  | Instr.Store { dst; src = Instr.Reg s }
    when e.last_bin >= 0 && e.last_bin + 5 = rf.rcode_len
         && s = e.last_bin_dst ->
      (* the binop's value flows straight into memory; its slot write
         is skipped when the store was its only reader *)
      let bbase = e.last_bin in
      let op1 = rf.rcode.(bbase) in
      let bop = rf.rcode.(bbase + 1) in
      let dslot = rf.rcode.(bbase + 2) in
      let a = rf.rcode.(bbase + 3) in
      let b = rf.rcode.(bbase + 4) in
      let sh =
        (if op1 = op_bin_ir then 1 else 0)
        lor if op1 = op_bin_ri then 2 else 0
      in
      rf.rcode_len <- bbase;
      emit rf op_bin_store;
      emit rf sh;
      emit rf bop;
      emit rf a;
      emit rf b;
      emit rf (if e.use_cnt.(s) > 1 then dslot else -1);
      emit rf (2 * dst.Resource.base);
      rf.rticks.(bbase + 1) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_bin <- -1;
      e.last_load <- -1;
      e.last_bst <- bbase
  | Instr.Addr_of { dst; var; off = Instr.Imm n } when e.use_cnt.(dst) = 1 ->
      (* sink the pure constant address to its sole consumer; only
         its tick is position sensitive, and that rides [pending] *)
      flush_haddr e;
      omit_tick e;
      e.haddr <- dst;
      e.haddr_vid <- var;
      e.haddr_off <- n
  | Instr.Ptr_store { addr = Instr.Reg a; src; _ }
    when e.hpb >= 0 && a = e.hpb_dst ->
      (* the full variable-index store chain in one dispatch: the
         address is an operand immediate, the computed pointer never
         touches a slot.  The prologue carries the ticks still
         pending (the sunk addr's, unless an earlier prologue already
         charged it); the binop's and the store's ticks are staged. *)
      let bbase = rf.rcode_len in
      start e e.pending;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      emit rf op_abin_pstore;
      emit rf e.hpb_sh;
      emit rf e.hpb_bop;
      emit rf e.hpb_vid;
      emit rf e.hpb_off;
      emit rf e.hpb_y;
      (match src with
      | Instr.Reg s2 ->
          emit rf 0;
          emit rf (slot e s2)
      | Instr.Imm n ->
          emit rf 1;
          emit rf n);
      rf.rticks.(bbase + 1) <- 1;
      rf.rticks.(bbase + 2) <- 1;
      e.n_fused <- e.n_fused + 1;
      e.hpb <- -1
  | Instr.Ptr_store { addr = Instr.Reg a; src; _ }
    when e.haddr >= 0 && a = e.haddr ->
      (* constant-index array store: the sunk address flows straight
         into the pointer write, never touching its slot.  The
         prologue stage carries whatever omitted ticks are pending;
         the pstore's own tick is the second stage. *)
      let bbase = rf.rcode_len in
      start e e.pending;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      emit rf op_astore;
      emit rf e.haddr_vid;
      emit rf e.haddr_off;
      (match src with
      | Instr.Reg s ->
          emit rf 0;
          emit rf (slot e s)
      | Instr.Imm n ->
          emit rf 1;
          emit rf n);
      rf.rticks.(bbase + 1) <- 1;
      e.n_fused <- e.n_fused + 1;
      e.haddr <- -1
  | Instr.Ptr_store { addr = Instr.Reg a; src; _ }
    when e.last_bin >= 0 && e.last_bin + 5 = rf.rcode_len
         && a = e.last_bin_dst ->
      (* the computed address flows straight into the pointer write;
         its slot write is skipped when the store was its only reader *)
      let bbase = e.last_bin in
      let op1 = rf.rcode.(bbase) in
      let bop = rf.rcode.(bbase + 1) in
      let tslot = rf.rcode.(bbase + 2) in
      let pa = rf.rcode.(bbase + 3) in
      let pb = rf.rcode.(bbase + 4) in
      let sh =
        (if op1 = op_bin_ir then 1 else 0)
        lor if op1 = op_bin_ri then 2 else 0
      in
      rf.rcode_len <- bbase;
      emit rf op_bin_pstore;
      emit rf sh;
      emit rf bop;
      emit rf pa;
      emit rf pb;
      emit rf (if e.use_cnt.(a) > 1 then tslot else -1);
      (match src with
      | Instr.Reg s2 ->
          emit rf 0;
          emit rf (slot e s2)
      | Instr.Imm n ->
          emit rf 1;
          emit rf n);
      rf.rticks.(bbase + 1) <- e.pending + 1;
      e.pending <- 0;
      e.seg <- e.seg + 1;
      e.n_fused <- e.n_fused + 1;
      e.last_bin <- -1;
      e.last_load <- -1
  | _ -> (
      let before = rf.rcode_len in
      compile_instr e moves i;
      match i.Instr.op with
      | Instr.Bin { dst; _ }
        when rf.rcode_len = before + 5 && rf.rcode.(before) < op_bin_ii ->
          e.last_bin <- before;
          e.last_bin_dst <- dst
      | Instr.Load { dst; _ } when rf.rcode_len = before + 3 ->
          e.last_load <- before;
          e.last_load_dst <- dst
      | Instr.Copy _
        when rf.rcode_len = before + 3
             && (rf.rcode.(before) = op_copy_r
                || rf.rcode.(before) = op_copy_i) ->
          merge_copy e before
      | _ -> ())

let compile_term (e : emitter) (g : Func.t) (b : Block.t) =
  let rf = e.rf in
  (* held state cannot cross the block boundary: the terminator may
     read the held registers, and the next block compiles fresh *)
  flush_hpb e;
  flush_haddr e;
  let synthetic = e.cur_bid >= e.orig_nblocks in
  (* fused mode: resolve the held copy against the terminator *)
  let term =
    match e.pend with
    | None -> b.Block.term
    | Some p -> (
        let pd, psrc =
          match p.Instr.op with
          | Instr.Copy { dst; src } -> (dst, src)
          | _ -> assert false
        in
        e.pend <- None;
        match b.Block.term with
        | Block.Br { cond = Instr.Reg c; t; f } when c = pd ->
            omit_tick e;
            e.n_elim <- e.n_elim + 1;
            Block.Br { cond = psrc; t; f }
        | Block.Ret (Some (Instr.Reg r)) when r = pd ->
            omit_tick e;
            e.n_elim <- e.n_elim + 1;
            Block.Ret (Some psrc)
        | t0 ->
            compile_instr e Ids.IntSet.empty p;
            t0)
  in
  let tk = if synthetic then 0 else e.pending + 1 in
  e.pending <- 0;
  e.seg <- e.seg + tk;
  (match term with
  | Block.Br { cond = Instr.Reg c; t; f }
    when e.last_bin >= 0
         && e.last_bin + 5 = rf.rcode_len
         && e.last_bin_dst = c ->
      (* fused compare-and-branch: rewind the just-emitted binop and
         re-emit it with both transfer quadruples inline.
         [rticks.(base)] keeps the binop's tick; the terminator tick
         (plus any folded-copy ticks) charges mid-instruction from
         [rticks.(base + 1)], after the binop executed. *)
      let bbase = e.last_bin in
      let op1 = rf.rcode.(bbase) in
      let bop = rf.rcode.(bbase + 1) in
      let dslot = rf.rcode.(bbase + 2) in
      let x = rf.rcode.(bbase + 3) in
      let y = rf.rcode.(bbase + 4) in
      rf.rcode_len <- bbase;
      emit rf
        (if op1 = op_bin_rr then op_cbr_rr
         else if op1 = op_bin_ri then op_cbr_ri
         else op_cbr_ir);
      emit rf bop;
      emit rf x;
      emit rf y;
      emit rf (if e.use_cnt.(c) = 1 then -1 else dslot);
      rf.rticks.(bbase + 1) <- tk;
      emit_edge e g ~t;
      emit_edge e g ~t:f;
      e.n_fused <- e.n_fused + 1;
      e.last_bin <- -1
  | _ -> (
      start e tk;
      match term with
      | Block.Jmp t ->
          emit rf op_jmp;
          emit_edge e g ~t
      | Block.Br { cond; t; f } -> (
          match cond with
          | Instr.Imm n ->
              (* constant condition: a one-sided jump; the untaken edge
                 is never counted, matching a never-bumped flat edge
                 id *)
              emit rf op_jmp;
              emit_edge e g ~t:(if n <> 0 then t else f)
          | Instr.Reg c ->
              emit rf op_br;
              emit rf (slot e c);
              emit_edge e g ~t;
              emit_edge e g ~t:f)
      | Block.Ret op -> (
          match op with
          | Some (Instr.Reg r) ->
              emit rf op_ret_r;
              emit rf (slot e r)
          | Some (Instr.Imm n) ->
              emit rf op_ret_i;
              emit rf n
          | None -> emit rf op_ret_void)));
  close_seg e

(* Walk the emitted stream and turn the clone-bid placeholders in
   transfer instructions into code offsets and entry-segment costs. *)
let patch (rf : rfunc) (block_off : int array) (block_cost : int array) =
  let code = rf.rcode in
  let pc = ref 0 in
  while !pc < rf.rcode_len do
    let base = !pc in
    match code.(base) with
    | 0 | 1 | 2 | 3 (* bin *) -> pc := base + 5
    | 4 | 5 (* un *) -> pc := base + 4
    | 6 | 7 (* copy *) -> pc := base + 3
    | 8 (* load *) -> pc := base + 3
    | 9 | 10 (* store *) -> pc := base + 3
    | 11 | 12 (* addr *) -> pc := base + 4
    | 13 | 14 (* pload *) -> pc := base + 3
    | 15 (* pstore *) -> pc := base + 5
    | 16 (* call *) -> pc := base + 5 + (2 * code.(base + 3))
    | 17 (* xcall *) -> pc := base + 2
    | 18 (* call_unknown *) -> pc := base + 2
    | 19 (* trap_rphi *) -> pc := base + 1
    | 20 | 21 (* print *) -> pc := base + 2
    | 22 (* jmp *) ->
        code.(base + 4) <- block_cost.(code.(base + 4));
        code.(base + 1) <- block_off.(code.(base + 1));
        pc := base + 5
    | 23 (* br *) ->
        code.(base + 5) <- block_cost.(code.(base + 5));
        code.(base + 2) <- block_off.(code.(base + 2));
        code.(base + 9) <- block_cost.(code.(base + 9));
        code.(base + 6) <- block_off.(code.(base + 6));
        pc := base + 10
    | 24 | 25 (* ret *) -> pc := base + 2
    | 26 (* ret_void *) -> pc := base + 1
    | 27 | 28 | 29 (* cbr *) ->
        code.(base + 8) <- block_cost.(code.(base + 8));
        code.(base + 5) <- block_off.(code.(base + 5));
        code.(base + 12) <- block_cost.(code.(base + 12));
        code.(base + 9) <- block_off.(code.(base + 9));
        pc := base + 13
    | 30 (* trap_div *) -> pc := base + 1
    | 31 (* bin2 *) -> pc := base + 9
    | 32 (* load2 *) -> pc := base + 5
    | 33 (* bin_store *) -> pc := base + 7
    | 34 | 35 (* mm_bin / mm_bin_store *) -> pc := base + 6
    | 36 (* astore *) -> pc := base + 5
    | 37 (* bin_pstore *) -> pc := base + 8
    | 38 | 39 (* mm_bin2 / mm_bin2_store *) -> pc := base + 9
    | 40 (* abin_pstore *) -> pc := base + 8
    | 41 (* copy_n *) -> pc := base + 2 + (3 * code.(base + 1))
    | 42 (* bst_bin2 *) -> pc := base + 15
    | _ -> assert false
  done

(* Static per-block counts from the *original* function: the clone's
   synthetic blocks and phi-lowering copies must not count. *)
let statics (rf : rfunc) (f : Func.t) =
  let n = rf.rnblocks in
  let fresh a = if Array.length a >= n then a else Array.make (max n 1) 0 in
  rf.s_instrs <- fresh rf.s_instrs;
  rf.s_loads <- fresh rf.s_loads;
  rf.s_stores <- fresh rf.s_stores;
  rf.s_aloads <- fresh rf.s_aloads;
  rf.s_astores <- fresh rf.s_astores;
  Array.fill rf.s_instrs 0 (Array.length rf.s_instrs) 0;
  Array.fill rf.s_loads 0 (Array.length rf.s_loads) 0;
  Array.fill rf.s_stores 0 (Array.length rf.s_stores) 0;
  Array.fill rf.s_aloads 0 (Array.length rf.s_aloads) 0;
  Array.fill rf.s_astores 0 (Array.length rf.s_astores) 0;
  Func.iter_blocks
    (fun b ->
      let bid = b.Block.bid in
      Iseq.iter
        (fun (i : Instr.t) ->
          rf.s_instrs.(bid) <- rf.s_instrs.(bid) + 1;
          match i.Instr.op with
          | Instr.Load _ -> rf.s_loads.(bid) <- rf.s_loads.(bid) + 1
          | Instr.Store _ -> rf.s_stores.(bid) <- rf.s_stores.(bid) + 1
          | Instr.Ptr_load _ -> rf.s_aloads.(bid) <- rf.s_aloads.(bid) + 1
          | Instr.Ptr_store _ -> rf.s_astores.(bid) <- rf.s_astores.(bid) + 1
          | Instr.Call _ ->
              rf.s_aloads.(bid) <- rf.s_aloads.(bid) + 1;
              rf.s_astores.(bid) <- rf.s_astores.(bid) + 1
          | _ -> ())
        b.Block.body)
    f

(* Count every live operand read of each vreg (body instructions plus
   terminator uses); drives the peephole's single-use folding
   decisions.  Dead blocks never execute and are never emitted, so
   their uses do not pin values. *)
let count_uses (g : Func.t) : int array =
  let uc = Array.make (max g.Func.next_reg 1) 0 in
  Func.iter_blocks
    (fun (b : Block.t) ->
      if not b.Block.dead then begin
        Iseq.iter
          (fun (i : Instr.t) ->
            List.iter
              (fun r -> uc.(r) <- uc.(r) + 1)
              (Instr.reg_uses i.Instr.op))
          b.Block.body;
        match b.Block.term with
        | Block.Br { cond = Instr.Reg c; _ } -> uc.(c) <- uc.(c) + 1
        | Block.Ret (Some (Instr.Reg r)) -> uc.(r) <- uc.(r) + 1
        | _ -> ()
      end)
    g;
  uc

(* Hot-path block schedule: reverse postorder from the entry, taken
   side first, following only the sides a constant branch can take.
   Keeps loop bodies contiguous in the code buffer; unreachable blocks
   are simply not emitted.  Correct for any emission order because
   logical edge ids are interned and the counter sinks are fixed
   slots. *)
let rpo_schedule (g : Func.t) : int list =
  let n = Func.num_blocks g in
  let seen = Array.make (max n 1) false in
  let order = ref [] in
  let rec go bid =
    if (not seen.(bid)) && not (Func.block g bid).Block.dead then begin
      seen.(bid) <- true;
      (match (Func.block g bid).Block.term with
      | Block.Jmp t -> go t
      | Block.Br { cond = Instr.Imm n; t; f } -> go (if n <> 0 then t else f)
      | Block.Br { t; f; _ } ->
          go t;
          go f
      | Block.Ret _ -> ());
      order := bid :: !order
    end
  in
  go g.Func.entry;
  !order

let compile_func (dec : t) (rf : rfunc) (f : Func.t) =
  rf.rcode_len <- 0;
  rf.rnstrs <- 0;
  rf.rnedges <- 0;
  rf.rnblocks <- Func.num_blocks f;
  let g = Func.clone f in
  Cfg.split_critical_edges g;
  let moves = Destruct.lower g in
  let sl = Slots.assign ?budget:dec.budget g in
  rf.rncoalesced <- sl.Slots.ncoalesced;
  rf.rnoverflow <- sl.Slots.noverflow;
  rf.rvregs <- g.Func.next_reg;
  (* one extra write-only slot absorbs defs of never-read registers *)
  let nslots = sl.Slots.nslots + 1 in
  rf.rnslots <- nslots;
  rf.frame_words <- (2 * nslots) + (2 * Array.length rf.rlocals);
  let nblocks_g = Func.num_blocks g in
  let e =
    {
      rf;
      fids = dec.rfids;
      slot_of = sl.Slots.slot_of;
      discard = 2 * (nslots - 1);
      orig_nblocks = rf.rnblocks;
      block_cost = Array.make (max nblocks_g 1) 0;
      block_off = Array.make (max nblocks_g 1) (-1);
      pending = 0;
      seg = 0;
      seg_site = -1;
      cur_bid = 0;
      edge_ids = Hashtbl.create 32;
      fuse = dec.fuse;
      use_cnt = (if dec.fuse then count_uses g else [||]);
      pend = None;
      last_bin = -1;
      last_bin_dst = -1;
      last_load = -1;
      last_load_dst = -1;
      last_load2 = -1;
      last_l2a = -1;
      last_l2b = -1;
      last_mm = -1;
      last_mm_dst = -1;
      last_mm2 = -1;
      last_mm2_dst = -1;
      haddr = -1;
      hpb = -1;
      hpb_dst = -1;
      hpb_vid = 0;
      hpb_off = 0;
      hpb_bop = 0;
      hpb_sh = 0;
      hpb_y = 0;
      hpb_dslot = 0;
      hpb_aslot = 0;
      last_bst = -1;
      last_cpy = -1;
      last_c1 = -1;
      haddr_vid = 0;
      haddr_off = 0;
      n_fused = 0;
      n_elim = 0;
    }
  in
  rf.rparams <-
    (let ps = f.Func.params in
     let a = Array.make (List.length ps) (-1) in
     List.iteri
       (fun i r ->
         let s =
           if r < Array.length e.slot_of then e.slot_of.(r) else -1
         in
         a.(i) <- (if s >= 0 then 2 * s else -1))
       ps;
     a);
  let schedule =
    if dec.fuse then rpo_schedule g else List.init nblocks_g Fun.id
  in
  List.iter
    (fun bid ->
      let b = Func.block g bid in
      if not b.Block.dead then begin
        e.block_off.(bid) <- rf.rcode_len;
        e.cur_bid <- bid;
        e.pending <- 0;
        e.seg <- 0;
        e.seg_site <- -1;
        Iseq.iter
          (fun i ->
            if e.fuse then compile_instr_fused e moves i
            else compile_instr e moves i)
          b.Block.body;
        compile_term e g b
      end)
    schedule;
  patch rf e.block_off e.block_cost;
  rf.entry_off <- e.block_off.(f.Func.entry);
  rf.entry_block <- rf.block_base + f.Func.entry;
  rf.entry_cost <- e.block_cost.(f.Func.entry);
  statics rf f;
  dec.rfused_ops <- dec.rfused_ops + e.n_fused;
  dec.rops_eliminated <- dec.rops_eliminated + e.n_elim

(* ------------------------------------------------------------------ *)

let mk_rfunc ~rfid ~rname ~rlocals =
  {
    rfid;
    rname;
    rparams = [||];
    rlocals;
    rnslots = 0;
    frame_words = 0;
    rcode = [||];
    rcode_len = 0;
    rticks = [||];
    rstrs = [||];
    rnstrs = 0;
    entry_off = 0;
    entry_block = 0;
    entry_cost = 0;
    rnblocks = 0;
    block_base = 0;
    edge_base = 0;
    rnedges = 0;
    edge_src = [||];
    edge_dst = [||];
    s_instrs = [||];
    s_loads = [||];
    s_stores = [||];
    s_aloads = [||];
    s_astores = [||];
    rncoalesced = 0;
    rnoverflow = 0;
    rvregs = 0;
  }

(* Compile every function, assigning the dense counter id spaces; each
   function's spans get one sink slot for its synthetic blocks. *)
let compile_all (dec : t) =
  dec.rfused_ops <- 0;
  dec.rops_eliminated <- 0;
  let blocks = ref 0 and edges = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      let rf = dec.rfuncs.(Hashtbl.find dec.rfids f.Func.fname) in
      rf.block_base <- !blocks;
      rf.edge_base <- !edges;
      compile_func dec rf f;
      blocks := !blocks + rf.rnblocks + 1;
      edges := !edges + rf.rnedges + 1)
    dec.rprog.Func.funcs;
  dec.rtotal_blocks <- !blocks;
  dec.rtotal_edges <- !edges

let compile ?budget ?(fuse = false) (prog : Func.prog) : t =
  let tab = prog.Func.vartab in
  let nvars = Resource.num_vars tab in
  let array_len = Array.make (max nvars 1) (-1) in
  let mem_init = Array.make (max (2 * nvars) 1) 0 in
  (* all cells start as integer 0 *)
  for v = 0 to nvars - 1 do
    mem_init.((2 * v) + 1) <- -1
  done;
  let locals_tbl : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  Resource.iter_vars
    (fun v ->
      match v.Resource.vkind with
      | Resource.Array len -> array_len.(v.Resource.vid) <- len
      | Resource.Global | Resource.Struct_field _ ->
          mem_init.(2 * v.Resource.vid) <- v.Resource.vinit
      | Resource.Addr_local fn | Resource.Elem fn ->
          let cur =
            match Hashtbl.find_opt locals_tbl fn with Some l -> l | None -> []
          in
          Hashtbl.replace locals_tbl fn (v.Resource.vid :: cur)
      | Resource.Heap -> ())
    tab;
  let nfuncs = List.length prog.Func.funcs in
  let fids = Hashtbl.create (2 * nfuncs) in
  let fnames = Array.make (max nfuncs 1) "" in
  List.iteri
    (fun i (f : Func.t) ->
      Hashtbl.replace fids f.Func.fname i;
      fnames.(i) <- f.Func.fname)
    prog.Func.funcs;
  let funcs =
    Array.of_list
      (List.mapi
         (fun i (f : Func.t) ->
           let rlocals =
             match Hashtbl.find_opt locals_tbl f.Func.fname with
             | Some vids -> Array.of_list vids
             | None -> [||]
           in
           mk_rfunc ~rfid:i ~rname:f.Func.fname ~rlocals)
         prog.Func.funcs)
  in
  let rmain =
    match Hashtbl.find_opt fids "main" with Some i -> i | None -> -1
  in
  let dec =
    {
      rprog = prog;
      budget;
      fuse;
      rnvars = nvars;
      rarray_len = array_len;
      rmem_init = mem_init;
      rfnames = fnames;
      rfids = fids;
      rfuncs = funcs;
      rmain;
      rtotal_blocks = 0;
      rtotal_edges = 0;
      rfused_ops = 0;
      rops_eliminated = 0;
    }
  in
  compile_all dec;
  dec

(* Recompile after the IR was transformed (promotion rewrites bodies,
   adds phis and registers) into the same buffers; only code that grew
   reallocates. *)
let refresh (dec : t) = compile_all dec
